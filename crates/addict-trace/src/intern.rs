//! Interned, arena-backed traces: the replay working set shrunk to the
//! *distinct code paths* of the workload.
//!
//! TPC transaction traces repeat near-identical event sequences per
//! transaction type — the very instruction locality ADDICT exploits on the
//! simulated machine. Flat `XctTrace`s waste that locality on the *host*:
//! every trace owns its own `Vec<TraceEvent>`, so at thousands of traces
//! replay streams tens of megabytes of near-duplicate events through the
//! host's memory hierarchy. This module stores each distinct event
//! sequence **once**:
//!
//! * [`SlicePool`] — a content-addressed arena: one contiguous
//!   `Vec<TraceEvent>` backing store holding deduplicated *canonical*
//!   slices (data-access block addresses blanked, since those vary per
//!   transaction even when control flow repeats);
//! * [`SliceRef`] — an 8-byte reference `{ pool_idx, len }` into the pool;
//! * [`InternedTrace`] — a trace as a compact `Vec<SliceRef>` plus the
//!   per-trace varying parts: the data-access block addresses, in stream
//!   order, delta-varint encoded against per-region running bases (see
//!   [`encode_addr`]) so each address costs ~1.5 bytes instead of 8;
//! * [`InternedWorkload`] — the interned form of a `WorkloadTrace`, its
//!   pool behind an `Arc` so replay threads (and whole sweep grids) share
//!   one read-only working set;
//! * [`InternedSet`] — the borrowed `(pool, traces)` view that implements
//!   [`TraceSet`], letting the replay engine walk `SliceRef`s directly.
//!
//! Slices split at **operation boundaries** (`OpBegin` starts a new slice,
//! `OpEnd` ends one): op bodies are the unit the paper shows repeating
//! across instances, and measured on TPC-C they dedup ~35x at this
//! granularity. Interning is lossless — [`InternedTrace::flatten`]
//! reproduces the original event sequence bit-for-bit, and the round-trip
//! is property-tested in `tests/intern_roundtrip.rs`.

use std::collections::HashMap;
use std::sync::Arc;

use addict_sim::BlockAddr;
use serde::{Deserialize, Serialize};

use crate::event::{FlatEvent, TraceEvent, WorkloadTrace, XctTrace, XctTypeId};
use crate::layout;
use crate::set::{Fetched, TraceSet};

/// A reference to one deduplicated slice in a [`SlicePool`]: `len` events
/// starting at `pool_idx` in the backing store. 8 bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceRef {
    /// Start offset into the pool's backing store.
    pub pool_idx: u32,
    /// Number of events in the slice (always ≥ 1).
    pub len: u32,
}

/// FNV-1a over a canonical slice. Deterministic (unlike `RandomState`), so
/// pool layout is a pure function of interning order.
fn hash_slice(events: &[TraceEvent]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for e in events {
        match *e {
            TraceEvent::XctBegin { xct_type } => mix(1 | (u64::from(xct_type.0) << 8)),
            TraceEvent::XctEnd => mix(2),
            TraceEvent::OpBegin { op } => mix(3 | ((op as u64) << 8)),
            TraceEvent::OpEnd { op } => mix(4 | ((op as u64) << 8)),
            TraceEvent::Instr {
                block,
                n_blocks,
                ipb,
            } => {
                mix(5 | (u64::from(n_blocks) << 8) | (u64::from(ipb) << 32));
                mix(block.0);
            }
            TraceEvent::Data { write, .. } => mix(6 | (u64::from(write) << 8)),
        }
    }
    h
}

/// Content-addressed arena of deduplicated canonical event slices.
///
/// All interned traces of a workload (or of several — profile and eval
/// sets share one pool) reference this single backing store, so replaying
/// N traces touches the pool's few hundred distinct slices instead of N
/// private event vectors.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct SlicePool {
    /// The contiguous backing store of canonical events.
    events: Vec<TraceEvent>,
    /// Canonical-slice hash → slices with that hash (collisions resolved
    /// by comparing contents).
    index: HashMap<u64, Vec<SliceRef>>,
    /// Slices interned so far, duplicates included (dedup numerator).
    slices_interned: u64,
    /// Distinct slices stored (dedup denominator).
    unique_slices: u64,
}

impl SlicePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a canonical slice (data addresses already blanked),
    /// returning a reference to the pool's single copy.
    ///
    /// # Panics
    /// Panics on an empty slice or a pool exceeding `u32` events.
    pub fn intern(&mut self, canon: &[TraceEvent]) -> SliceRef {
        assert!(!canon.is_empty(), "empty slices are never interned");
        self.slices_interned += 1;
        let h = hash_slice(canon);
        let candidates = self.index.entry(h).or_default();
        for &r in candidates.iter() {
            if &self.events[r.pool_idx as usize..(r.pool_idx + r.len) as usize] == canon {
                return r;
            }
        }
        // Bound the *end* of the new slice, not its start: pool_idx + len
        // must stay representable so resolve()/at() arithmetic cannot
        // overflow u32.
        let end = u32::try_from(self.events.len() + canon.len()).expect("pool fits u32 events");
        let len = u32::try_from(canon.len()).expect("slice fits u32 events");
        let pool_idx = end - len;
        self.events.extend_from_slice(canon);
        let r = SliceRef { pool_idx, len };
        candidates.push(r);
        self.unique_slices += 1;
        r
    }

    /// The canonical events of `r`.
    #[inline]
    pub fn resolve(&self, r: SliceRef) -> &[TraceEvent] {
        &self.events[r.pool_idx as usize..(r.pool_idx + r.len) as usize]
    }

    /// One canonical event of `r` — the replay hot path's pool read.
    #[inline]
    fn at(&self, r: SliceRef, pos: u32) -> TraceEvent {
        debug_assert!(pos < r.len);
        self.events[(r.pool_idx + pos) as usize]
    }

    /// Events in the backing store (each distinct slice stored once).
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Distinct slices stored.
    pub fn unique_slices(&self) -> u64 {
        self.unique_slices
    }

    /// Slices interned, duplicates included.
    pub fn slices_interned(&self) -> u64 {
        self.slices_interned
    }

    /// Dedup ratio: slices interned per distinct slice stored.
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_slices == 0 {
            1.0
        } else {
            self.slices_interned as f64 / self.unique_slices as f64
        }
    }

    /// Resident bytes of the backing store.
    pub fn backing_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<TraceEvent>()
    }
}

/// One transaction trace in interned form: a compact slice-reference
/// sequence plus the per-trace varying data-access addresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InternedTrace {
    /// Transaction type.
    pub xct_type: XctTypeId,
    /// The trace's event stream as references into the shared pool.
    slices: Vec<SliceRef>,
    /// Data-access block addresses, in stream order (canonical slices
    /// carry blanked `Data` events; these are their real addresses),
    /// delta-varint encoded — see [`encode_addr`]. Self-contained per
    /// trace (bases reset at trace start), so re-interning into another
    /// pool copies these bytes verbatim.
    data: Vec<u8>,
    /// Number of addresses encoded in `data`.
    n_data: u32,
    /// Total dynamic instructions, cached at intern time. Schedulers that
    /// weigh placement by work (STREX's load balancer) ask for this once
    /// per transaction; resolving it through the pool would be O(events)
    /// per call and turns the dispatch pre-pass into an O(total events)
    /// scan of the whole workload.
    instructions: u64,
}

/// Blank the per-trace varying part of a data event.
#[inline]
fn canonical(e: &TraceEvent) -> TraceEvent {
    match *e {
        TraceEvent::Data { write, .. } => TraceEvent::Data {
            block: BlockAddr(0),
            write,
        },
        e => e,
    }
}

/// Regions of the delta codec: `min(addr >> 24, 7)`, which lines the
/// layout's data regions up one-to-one (metadata 1, locks 2, buffer pool
/// 3, log 4, transaction state 5) and folds everything at
/// [`layout::PAGE_BASE`] and above into region 7.
const DELTA_REGIONS: usize = 8;

/// Seed value of each region's running base: the region's own base
/// address, so a region's first touch encodes as its small offset from
/// the base rather than a full absolute address.
const DELTA_BASES: [u64; DELTA_REGIONS] = [
    0,
    layout::METADATA_BASE,
    layout::LOCK_TABLE_BASE,
    layout::BUFFERPOOL_BASE,
    layout::LOG_BASE,
    layout::XCT_STATE_BASE,
    0x0600_0000,
    layout::PAGE_BASE,
];

/// The delta-codec region of an address.
#[inline]
fn delta_region(addr: u64) -> usize {
    ((addr >> 24).min(7)) as usize
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Append one data-access address to a trace's encoded side table,
/// updating the running per-region bases.
///
/// Addresses are stored as zigzag varint deltas against the **last
/// address seen in the same address-space region** of the trace, bases
/// seeded from [`DELTA_BASES`]. A region's first touch is a small offset
/// from its base (effectively absolute); later touches pay only for
/// their locality — sequential log blocks, repeated lock buckets and
/// per-transaction state cost a byte or two instead of eight. Deltas
/// never cross regions, so the op-body pattern "metadata, lock, page,
/// log" — addresses tens of megabytes apart — stays cheap. Measured on
/// TPC-B@400 this shrinks address bytes ~5.3x (TPC-C ~4.8x), where a
/// first-touch-per-op scheme manages only ~1.8x.
///
/// Entry layout: first byte `continue(bit 7) | region(bits 6..4) |
/// payload(bits 3..0)`, then LEB128 continuation bytes (7 payload bits,
/// high bit = continue) — at most 10 bytes for a 64-bit zigzag delta.
/// Arithmetic wraps, so every `u64` address round-trips.
fn encode_addr(addr: u64, last: &mut [u64; DELTA_REGIONS], out: &mut Vec<u8>) {
    let r = delta_region(addr);
    let mut z = zigzag(addr.wrapping_sub(last[r]) as i64);
    last[r] = addr;
    let mut first = ((r as u8) << 4) | (z & 0xf) as u8;
    z >>= 4;
    if z != 0 {
        first |= 0x80;
    }
    out.push(first);
    while z != 0 {
        let mut b = (z & 0x7f) as u8;
        z >>= 7;
        if z != 0 {
            b |= 0x80;
        }
        out.push(b);
    }
}

/// Decode the address at byte offset `off`, returning it with the offset
/// of the next entry. Pure — the caller commits base/offset updates
/// separately, because the cursor's `fetch` peeks without consuming.
#[inline]
fn decode_addr(data: &[u8], off: usize, last: &[u64; DELTA_REGIONS]) -> (u64, usize) {
    let first = data[off];
    let r = ((first >> 4) & 0x7) as usize;
    let mut z = u64::from(first & 0xf);
    let mut shift = 4u32;
    let mut cont = first & 0x80 != 0;
    let mut i = off + 1;
    while cont {
        let b = data[i];
        z |= u64::from(b & 0x7f) << shift;
        shift += 7;
        cont = b & 0x80 != 0;
        i += 1;
    }
    (last[r].wrapping_add(unzigzag(z) as u64), i)
}

/// Decode the address at `*off` and consume it: advances the offset and
/// commits the region's running base. (The decoded address is always in
/// the region the entry was tagged with, so committing by
/// `delta_region(addr)` matches the encoder.)
#[inline]
fn decode_addr_mut(data: &[u8], off: &mut usize, last: &mut [u64; DELTA_REGIONS]) -> u64 {
    let (addr, next) = decode_addr(data, *off, last);
    last[delta_region(addr)] = addr;
    *off = next;
    addr
}

impl InternedTrace {
    /// Intern `trace` into `pool`. Slices split at operation boundaries:
    /// a slice ends right before every `OpBegin` and right after every
    /// `OpEnd`, so op bodies — the unit that repeats across instances —
    /// land as single pool entries.
    pub fn intern(trace: &XctTrace, pool: &mut SlicePool) -> InternedTrace {
        let mut slices = Vec::new();
        let mut data = Vec::new();
        let mut n_data = 0u32;
        let mut last = DELTA_BASES;
        let mut canon: Vec<TraceEvent> = Vec::new();
        for e in &trace.events {
            if matches!(e, TraceEvent::OpBegin { .. }) && !canon.is_empty() {
                slices.push(pool.intern(&canon));
                canon.clear();
            }
            if let TraceEvent::Data { block, .. } = e {
                encode_addr(block.0, &mut last, &mut data);
                n_data += 1;
            }
            canon.push(canonical(e));
            if matches!(e, TraceEvent::OpEnd { .. }) {
                slices.push(pool.intern(&canon));
                canon.clear();
            }
        }
        if !canon.is_empty() {
            slices.push(pool.intern(&canon));
        }
        // Traces live for the whole run at million-transaction scale:
        // trade the one-off realloc for exact-fit allocations.
        slices.shrink_to_fit();
        data.shrink_to_fit();
        InternedTrace {
            xct_type: trace.xct_type,
            slices,
            data,
            n_data,
            instructions: trace.instructions(),
        }
    }

    /// Reconstruct the flat trace, bit-identical to what was interned.
    pub fn flatten(&self, pool: &SlicePool) -> XctTrace {
        let mut events = Vec::with_capacity(self.slices.iter().map(|r| r.len as usize).sum());
        let mut off = 0usize;
        let mut last = DELTA_BASES;
        for &r in &self.slices {
            for e in pool.resolve(r) {
                events.push(match *e {
                    TraceEvent::Data { write, .. } => TraceEvent::Data {
                        block: BlockAddr(decode_addr_mut(&self.data, &mut off, &mut last)),
                        write,
                    },
                    e => e,
                });
            }
        }
        assert_eq!(off, self.data.len(), "data stream exhausted exactly");
        XctTrace {
            xct_type: self.xct_type,
            events,
        }
    }

    /// Re-intern into another pool (range-parallel generation merges
    /// worker-local pools into one master arena in range order).
    pub fn reintern(&self, from: &SlicePool, to: &mut SlicePool) -> InternedTrace {
        InternedTrace {
            xct_type: self.xct_type,
            slices: self
                .slices
                .iter()
                .map(|&r| to.intern(from.resolve(r)))
                .collect(),
            // The encoded side table is pool-independent: copy verbatim.
            data: self.data.clone(),
            n_data: self.n_data,
            instructions: self.instructions,
        }
    }

    /// Slice references of this trace.
    pub fn slice_refs(&self) -> &[SliceRef] {
        &self.slices
    }

    /// Number of data accesses.
    pub fn data_accesses(&self) -> u64 {
        u64::from(self.n_data)
    }

    /// Bytes of the encoded data-address side table (raw form would be
    /// `8 × data_accesses()`).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Events after slice expansion (= the flat trace's event count).
    pub fn n_events(&self) -> usize {
        self.slices.iter().map(|r| r.len as usize).sum()
    }

    /// Total dynamic instructions (matches `XctTrace::instructions`).
    /// Cached at intern time — O(1), never touches the pool.
    pub fn instructions(&self, _pool: &SlicePool) -> u64 {
        self.instructions
    }

    /// Per-trace resident bytes (slice refs + data addresses + the struct
    /// itself; the shared pool is accounted separately).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slices.len() * std::mem::size_of::<SliceRef>()
            + self.data.len()
    }
}

/// A named batch of interned traces — the interned form of
/// [`WorkloadTrace`]. The pool sits behind an `Arc` so several workloads
/// (profile + eval) and every thread of a sweep grid share one read-only
/// arena.
#[derive(Debug, Clone)]
pub struct InternedWorkload {
    /// Workload name ("TPC-B", "TPC-C", "TPC-E").
    pub name: String,
    /// Transaction type names, indexed by [`XctTypeId`].
    pub xct_type_names: Vec<String>,
    /// The shared slice arena.
    pub pool: Arc<SlicePool>,
    /// The traces, in generation order.
    pub xcts: Vec<InternedTrace>,
}

impl InternedWorkload {
    /// Intern a flat workload into a fresh private pool.
    pub fn from_flat(w: &WorkloadTrace) -> Self {
        let mut pool = SlicePool::new();
        let xcts = w
            .xcts
            .iter()
            .map(|t| InternedTrace::intern(t, &mut pool))
            .collect();
        InternedWorkload {
            name: w.name.clone(),
            xct_type_names: w.xct_type_names.clone(),
            pool: Arc::new(pool),
            xcts,
        }
    }

    /// Reconstruct the flat workload, bit-identical to what was interned.
    pub fn flatten(&self) -> WorkloadTrace {
        WorkloadTrace {
            name: self.name.clone(),
            xct_type_names: self.xct_type_names.clone(),
            xcts: self.xcts.iter().map(|t| t.flatten(&self.pool)).collect(),
        }
    }

    /// Total resident bytes of this workload for cache accounting: the
    /// shared pool's backing store plus every trace's refs/addresses plus
    /// the container and name overhead. This is what a trace-pool cache
    /// charges against its byte budget — when several workloads share one
    /// pool (`Arc`), each cached entry still charges the full pool (the
    /// budget bounds worst-case retention, so double-counting a shared
    /// arena errs on the safe side).
    pub fn resident_bytes(&self) -> usize {
        let names: usize = self
            .xct_type_names
            .iter()
            .map(|n| n.len() + std::mem::size_of::<String>())
            .sum();
        std::mem::size_of::<Self>() + self.name.len() + names + self.footprint().resident_bytes()
    }

    /// The borrowed `(pool, traces)` view replay walks.
    pub fn as_set(&self) -> InternedSet<'_> {
        InternedSet {
            pool: &self.pool,
            xcts: &self.xcts,
        }
    }

    /// Memory footprint report (BENCHMARKS.md methodology). Both sides
    /// count their per-trace struct overhead: flat is
    /// `size_of::<XctTrace>() + events × size_of::<TraceEvent>()` per
    /// trace, interned is [`InternedTrace::resident_bytes`] plus the
    /// shared pool once.
    pub fn footprint(&self) -> InternFootprint {
        let flat_events: usize = self.xcts.iter().map(InternedTrace::n_events).sum();
        let per_trace: usize = self.xcts.iter().map(InternedTrace::resident_bytes).sum();
        InternFootprint {
            n_traces: self.xcts.len(),
            flat_bytes: flat_events * std::mem::size_of::<TraceEvent>()
                + self.xcts.len() * std::mem::size_of::<XctTrace>(),
            pool_bytes: self.pool.backing_bytes(),
            trace_bytes: per_trace,
            data_bytes: self.xcts.iter().map(InternedTrace::data_bytes).sum(),
            data_accesses: self.xcts.iter().map(InternedTrace::data_accesses).sum(),
            unique_slices: self.pool.unique_slices(),
            slices_interned: self.pool.slices_interned(),
        }
    }
}

/// Resident-memory comparison of a workload's flat vs interned form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InternFootprint {
    /// Traces measured.
    pub n_traces: usize,
    /// Bytes the flat event vectors would occupy (events × 16).
    pub flat_bytes: usize,
    /// Bytes of the shared pool backing store.
    pub pool_bytes: usize,
    /// Bytes of the per-trace slice refs + data addresses.
    pub trace_bytes: usize,
    /// Bytes of the encoded per-trace data-address side tables (the
    /// dominant component of `trace_bytes` on TPC workloads).
    pub data_bytes: usize,
    /// Data accesses across all traces (8 bytes each if stored raw).
    pub data_accesses: u64,
    /// Distinct slices in the pool.
    pub unique_slices: u64,
    /// Slices interned, duplicates included.
    pub slices_interned: u64,
}

impl InternFootprint {
    /// Total interned resident bytes (pool + per-trace).
    pub fn resident_bytes(&self) -> usize {
        self.pool_bytes + self.trace_bytes
    }

    /// Flat-over-interned byte reduction factor.
    pub fn reduction(&self) -> f64 {
        if self.resident_bytes() == 0 {
            1.0
        } else {
            self.flat_bytes as f64 / self.resident_bytes() as f64
        }
    }

    /// Raw-over-encoded reduction of the data-address side tables
    /// (8 bytes per access if stored as absolute `u64`s).
    pub fn address_reduction(&self) -> f64 {
        if self.data_bytes == 0 {
            1.0
        } else {
            (self.data_accesses * 8) as f64 / self.data_bytes as f64
        }
    }

    /// Dedup ratio of the pool this workload interned into.
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_slices == 0 {
            1.0
        } else {
            self.slices_interned as f64 / self.unique_slices as f64
        }
    }
}

/// Borrowed view of interned traces + their pool: what the replay engine
/// and the sweep grid hand around. `Copy`, 2 pointers wide.
#[derive(Debug, Clone, Copy)]
pub struct InternedSet<'a> {
    /// The shared arena.
    pub pool: &'a SlicePool,
    /// The traces to replay.
    pub xcts: &'a [InternedTrace],
}

/// Cursor over an interned trace: the **current slice's `SliceRef` cached
/// inline** (so steady-state fetches read only the pool — no per-event
/// `slices[]` indirection), the slice's index, the position within it, the
/// block offset within the current instruction run, and the delta
/// decoder's state in the per-trace data-address stream (byte offset plus
/// the running per-region bases — the stream is sequential-decode only,
/// which the forward-walking cursor is by construction).
///
/// A default cursor carries the sentinel `r.len == 0` with `slice == 0`,
/// meaning "first slice not yet loaded" — resolved lazily because
/// `Default` has no trace to look at. After the first advance the cached
/// ref only refreshes at slice boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternCursor {
    r: SliceRef,
    slice: u32,
    pos: u32,
    off: u16,
    data_off: u32,
    last: [u64; DELTA_REGIONS],
}

impl Default for InternCursor {
    fn default() -> Self {
        InternCursor {
            r: SliceRef::default(),
            slice: 0,
            pos: 0,
            off: 0,
            data_off: 0,
            last: DELTA_BASES,
        }
    }
}

impl InternedSet<'_> {
    /// The slice under `cur`, loading the first slice for a fresh cursor.
    /// `None` is end-of-trace. (Slices are never empty, so a loaded ref
    /// always has at least one event.)
    #[inline]
    fn slice_of(&self, idx: usize, cur: InternCursor) -> Option<SliceRef> {
        if cur.r.len != 0 {
            return Some(cur.r);
        }
        if cur.slice == 0 {
            return self.xcts[idx].slices.first().copied();
        }
        None
    }

    /// Materialize the lazily-loaded first slice into the cursor.
    #[inline]
    fn load(&self, idx: usize, cur: &mut InternCursor) {
        if cur.r.len == 0 {
            if let Some(&r) = self.xcts[idx].slices.first() {
                cur.r = r;
            }
        }
    }

    /// Step `cur` past the current event: next position in the cached
    /// slice, or load the next slice at its boundary.
    #[inline]
    fn bump(&self, idx: usize, cur: &mut InternCursor) {
        cur.pos += 1;
        if cur.pos >= cur.r.len {
            cur.slice += 1;
            cur.pos = 0;
            cur.r = self.xcts[idx]
                .slices
                .get(cur.slice as usize)
                .copied()
                .unwrap_or(SliceRef {
                    pool_idx: 0,
                    len: 0,
                });
        }
    }
}

impl TraceSet for InternedSet<'_> {
    type Cursor = InternCursor;

    fn len(&self) -> usize {
        self.xcts.len()
    }

    fn xct_type(&self, idx: usize) -> XctTypeId {
        self.xcts[idx].xct_type
    }

    fn instructions_of(&self, idx: usize) -> u64 {
        self.xcts[idx].instructions
    }

    #[inline]
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
        let t = &self.xcts[idx];
        let Some(r) = self.slice_of(idx, cur) else {
            return Fetched::End;
        };
        match self.pool.at(r, cur.pos) {
            TraceEvent::Instr {
                block,
                n_blocks,
                ipb,
            } => Fetched::Run {
                block: BlockAddr(block.0 + u64::from(cur.off)),
                rem: n_blocks - cur.off,
                ipb,
            },
            TraceEvent::Data { write, .. } => {
                // Peek: decode without committing offset or bases —
                // `advance_event` consumes the entry.
                let (addr, _) = decode_addr(&t.data, cur.data_off as usize, &cur.last);
                Fetched::Event(FlatEvent::Data {
                    block: BlockAddr(addr),
                    write,
                })
            }
            TraceEvent::XctBegin { xct_type } => Fetched::Event(FlatEvent::XctBegin(xct_type)),
            TraceEvent::XctEnd => Fetched::Event(FlatEvent::XctEnd),
            TraceEvent::OpBegin { op } => Fetched::Event(FlatEvent::OpBegin(op)),
            TraceEvent::OpEnd { op } => Fetched::Event(FlatEvent::OpEnd(op)),
        }
    }

    #[inline]
    fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
        debug_assert!(k >= 1 && k <= rem);
        self.load(idx, cur);
        if k == rem {
            cur.off = 0;
            self.bump(idx, cur);
        } else {
            cur.off += k;
        }
    }

    #[inline]
    fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent) {
        if let FlatEvent::Data { block, .. } = ev {
            // The fetched event already carries the decoded address, so
            // committing it needs only the entry's byte length (scan the
            // continuation bits), not a second decode.
            debug_assert_eq!(
                decode_addr(&self.xcts[idx].data, cur.data_off as usize, &cur.last).0,
                block.0,
                "advance_event got an event fetch did not return"
            );
            cur.last[delta_region(block.0)] = block.0;
            let data = &self.xcts[idx].data;
            let mut i = cur.data_off as usize;
            while data[i] & 0x80 != 0 {
                i += 1;
            }
            cur.data_off = (i + 1) as u32;
        }
        self.load(idx, cur);
        self.bump(idx, cur);
    }

    /// Direct pool scan instead of the default's fetch-per-event cursor
    /// walk: canonical `Data` events are read straight out of the cached
    /// slice (crossing slice boundaries as needed) and their real
    /// addresses streamed out of the trace's delta-encoded side table
    /// with a local copy of the decoder state — one pool read and one
    /// varint decode per event on the data-heavy hot path.
    fn gather_data_run(
        &self,
        idx: usize,
        cur: Self::Cursor,
        run: &mut crate::set::DataRun,
    ) -> usize {
        run.clear();
        let t = &self.xcts[idx];
        let Some(mut r) = self.slice_of(idx, cur) else {
            return 0;
        };
        // For a fresh cursor `slice_of` loaded slice 0, which is exactly
        // `cur.slice`; thereafter the cached ref and index stay in step.
        let mut slice = cur.slice as usize;
        let mut pos = cur.pos;
        let mut off = cur.data_off as usize;
        let mut last = cur.last;
        loop {
            while pos < r.len {
                let TraceEvent::Data { write, .. } = self.pool.at(r, pos) else {
                    return run.len();
                };
                run.push(addict_sim::DataAccess {
                    block: BlockAddr(decode_addr_mut(&t.data, &mut off, &mut last)),
                    write,
                });
                pos += 1;
            }
            slice += 1;
            match t.slices.get(slice) {
                Some(&next) => {
                    r = next;
                    pos = 0;
                }
                None => return run.len(),
            }
        }
    }

    /// Step past `k` gathered data events with slice-granular arithmetic
    /// (one `slices[]` read per crossed boundary) instead of `k`
    /// load+bump round trips. The `k` consumed entries are decoded once
    /// more to roll the delta bases forward — varints have no random
    /// access, and the decode is cheaper than the gather that produced
    /// them.
    fn advance_data_run(&self, idx: usize, cur: &mut Self::Cursor, k: usize) {
        self.load(idx, cur);
        {
            let data = &self.xcts[idx].data;
            let mut off = cur.data_off as usize;
            for _ in 0..k {
                decode_addr_mut(data, &mut off, &mut cur.last);
            }
            cur.data_off = off as u32;
        }
        let mut rem = k as u32;
        loop {
            let in_slice = cur.r.len - cur.pos;
            if rem < in_slice {
                cur.pos += rem;
                return;
            }
            rem -= in_slice;
            cur.slice += 1;
            cur.pos = 0;
            match self.xcts[idx].slices.get(cur.slice as usize) {
                Some(&next) => cur.r = next,
                None => {
                    // End of trace: the sentinel cursor `bump` would leave.
                    // Advancing further than the gathered run is a caller
                    // bug — fail fast (in release too; a silent wrap here
                    // would spin forever on the 0-length sentinel).
                    cur.r = SliceRef {
                        pool_idx: 0,
                        len: 0,
                    };
                    assert!(rem == 0, "advance_data_run past the gathered run");
                    return;
                }
            }
            if rem == 0 {
                return;
            }
        }
    }

    // A resumed trace's first fetch chases `InternedTrace` -> `slices[0]`
    // -> pool storage -> `data` varints; at scale every link is cold (the
    // resident set outgrows L2 long before the 10k rung). Warming the
    // chain heads one pick ahead overlaps those misses with the previous
    // segment's replay.
    #[inline]
    fn prefetch(&self, idx: usize) {
        let t = &self.xcts[idx];
        crate::set::prefetch_ptr(t);
        crate::set::prefetch_ptr(t.slices.as_ptr());
        crate::set::prefetch_ptr(t.data.as_ptr());
    }
}

// Thread-safety audit: sweep grids share interned sets (and their Arc'd
// pools) across worker threads for the whole grid's lifetime.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<SliceRef>();
    shared::<SlicePool>();
    shared::<InternedTrace>();
    shared::<InternedWorkload>();
    shared::<InternedSet<'_>>();
    shared::<InternFootprint>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use crate::set::flat_events_of;

    fn sample(data_base: u64) -> XctTrace {
        XctTrace {
            xct_type: XctTypeId(0),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(0),
                },
                TraceEvent::Instr {
                    block: BlockAddr(1),
                    n_blocks: 2,
                    ipb: 10,
                },
                TraceEvent::OpBegin { op: OpKind::Probe },
                TraceEvent::Instr {
                    block: BlockAddr(0x40),
                    n_blocks: 4,
                    ipb: 6,
                },
                TraceEvent::Data {
                    block: BlockAddr(data_base),
                    write: false,
                },
                TraceEvent::Data {
                    block: BlockAddr(data_base + 3),
                    write: true,
                },
                TraceEvent::OpEnd { op: OpKind::Probe },
                TraceEvent::XctEnd,
            ],
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let mut pool = SlicePool::new();
        let t = sample(0x9000);
        let it = InternedTrace::intern(&t, &mut pool);
        assert_eq!(it.flatten(&pool).events, t.events);
        assert_eq!(it.instructions(&pool), t.instructions());
        assert_eq!(it.data_accesses(), t.data_accesses());
        assert_eq!(it.n_events(), t.events.len());
    }

    #[test]
    fn same_control_flow_shares_slices() {
        // Two traces identical up to data addresses: the second interning
        // adds nothing to the pool.
        let mut pool = SlicePool::new();
        let a = InternedTrace::intern(&sample(0x9000), &mut pool);
        let before = pool.n_events();
        let b = InternedTrace::intern(&sample(0xf300), &mut pool);
        assert_eq!(pool.n_events(), before, "no new pool events");
        assert_eq!(a.slices, b.slices, "identical slice refs");
        assert_eq!(pool.dedup_ratio(), 2.0);
        // Yet both flatten to their own data addresses.
        assert_ne!(a.flatten(&pool).events, b.flatten(&pool).events);
    }

    #[test]
    fn interned_set_walks_like_flat() {
        let mut pool = SlicePool::new();
        let traces = vec![sample(0x9000), sample(0xa000)];
        let interned: Vec<InternedTrace> = traces
            .iter()
            .map(|t| InternedTrace::intern(t, &mut pool))
            .collect();
        let set = InternedSet {
            pool: &pool,
            xcts: &interned,
        };
        for i in 0..traces.len() {
            assert_eq!(
                flat_events_of(&set, i),
                flat_events_of(traces.as_slice(), i),
                "trace {i} diverged"
            );
        }
    }

    /// The data-run view — `InternedSet`'s specialized direct-pool-scan
    /// `gather_data_run`/`advance_data_run` overrides — agrees with the
    /// flat layout: same runs at every cursor position, and advancing by
    /// a run lands both layouts on the same next event.
    #[test]
    fn interned_data_runs_match_flat() {
        use crate::set::DataRun;

        let mut pool = SlicePool::new();
        let traces = vec![sample(0x9000), sample(0xa040)];
        let interned: Vec<InternedTrace> = traces
            .iter()
            .map(|t| InternedTrace::intern(t, &mut pool))
            .collect();
        let set = InternedSet {
            pool: &pool,
            xcts: &interned,
        };
        for idx in 0..traces.len() {
            let flat = traces.as_slice();
            let mut fc = <Vec<XctTrace> as TraceSet>::Cursor::default();
            let mut ic = InternCursor::default();
            let mut frun = DataRun::new();
            let mut irun = DataRun::new();
            loop {
                let n = flat.gather_data_run(idx, fc, &mut frun);
                assert_eq!(set.gather_data_run(idx, ic, &mut irun), n);
                assert_eq!(frun.accesses(), irun.accesses(), "trace {idx}");
                if n > 0 {
                    // Consume part of the run on both layouts; the
                    // remainders must still agree.
                    let k = 1 + n / 2;
                    flat.advance_data_run(idx, &mut fc, k);
                    set.advance_data_run(idx, &mut ic, k);
                    let rest = flat.gather_data_run(idx, fc, &mut frun);
                    assert_eq!(set.gather_data_run(idx, ic, &mut irun), rest);
                    assert_eq!(frun.accesses(), irun.accesses());
                    flat.advance_data_run(idx, &mut fc, rest);
                    set.advance_data_run(idx, &mut ic, rest);
                    continue;
                }
                match flat.fetch(idx, fc) {
                    Fetched::End => {
                        assert_eq!(set.fetch(idx, ic), Fetched::End);
                        break;
                    }
                    Fetched::Run { rem, .. } => {
                        flat.advance_run(idx, &mut fc, rem, 1);
                        set.advance_run(idx, &mut ic, rem, 1);
                    }
                    Fetched::Event(ev) => {
                        flat.advance_event(idx, &mut fc, ev);
                        set.advance_event(idx, &mut ic, ev);
                    }
                }
            }
        }
    }

    #[test]
    fn reintern_merges_pools_losslessly() {
        let mut a = SlicePool::new();
        let mut b = SlicePool::new();
        let ta = InternedTrace::intern(&sample(0x9000), &mut a);
        let tb = InternedTrace::intern(&sample(0xb000), &mut b);
        let mut master = SlicePool::new();
        let ma = ta.reintern(&a, &mut master);
        let mb = tb.reintern(&b, &mut master);
        assert_eq!(ma.flatten(&master).events, sample(0x9000).events);
        assert_eq!(mb.flatten(&master).events, sample(0xb000).events);
        // The shared control flow deduped across the merged pools.
        assert_eq!(master.n_events(), a.n_events());
    }

    #[test]
    fn workload_roundtrip_and_footprint() {
        let w = WorkloadTrace {
            name: "t".into(),
            xct_type_names: vec!["only".into()],
            xcts: (0..8).map(|i| sample(0x9000 + i * 64)).collect(),
        };
        let iw = InternedWorkload::from_flat(&w);
        let back = iw.flatten();
        assert_eq!(back.name, w.name);
        assert_eq!(back.xct_type_names, w.xct_type_names);
        for (a, b) in back.xcts.iter().zip(&w.xcts) {
            assert_eq!(a.xct_type, b.xct_type);
            assert_eq!(a.events, b.events);
        }
        let fp = iw.footprint();
        assert_eq!(
            fp.flat_bytes,
            w.xcts
                .iter()
                .map(|t| t.events.len() * std::mem::size_of::<TraceEvent>()
                    + std::mem::size_of::<XctTrace>())
                .sum::<usize>()
        );
        assert!(
            fp.resident_bytes() < fp.flat_bytes,
            "8 identical-flow traces must compress: {fp:?}"
        );
        assert!(fp.dedup_ratio() > 3.0, "{fp:?}");
        assert_eq!(
            fp.data_accesses,
            w.xcts.iter().map(XctTrace::data_accesses).sum::<u64>()
        );
        assert!(
            fp.data_bytes < fp.data_accesses as usize * 8,
            "encoded addresses must beat raw u64s: {fp:?}"
        );
        assert!(fp.address_reduction() > 1.0, "{fp:?}");
        // Cache accounting covers the footprint plus container overhead.
        assert!(iw.resident_bytes() > fp.resident_bytes());
        assert!(iw.resident_bytes() < fp.resident_bytes() + 4096);
    }

    #[test]
    fn empty_trace_interns_to_nothing() {
        let mut pool = SlicePool::new();
        let t = XctTrace {
            xct_type: XctTypeId(3),
            events: vec![],
        };
        let it = InternedTrace::intern(&t, &mut pool);
        assert!(it.slices.is_empty());
        assert_eq!(it.flatten(&pool).events, t.events);
        assert_eq!(pool.n_events(), 0);
    }

    #[test]
    fn hash_collisions_fall_back_to_comparison() {
        // Different slices with (presumably) different hashes both live in
        // the pool; identical content always returns the original ref.
        let mut pool = SlicePool::new();
        let e1 = [TraceEvent::XctEnd];
        let e2 = [TraceEvent::XctBegin {
            xct_type: XctTypeId(1),
        }];
        let r1 = pool.intern(&e1);
        let r2 = pool.intern(&e2);
        assert_ne!(r1, r2);
        assert_eq!(pool.intern(&e1), r1);
        assert_eq!(pool.intern(&e2), r2);
        assert_eq!(pool.unique_slices(), 2);
        assert_eq!(pool.slices_interned(), 4);
    }

    #[test]
    fn delta_codec_roundtrips_extremes() {
        // Non-monotone, duplicate, region-hopping, >32-bit-delta and
        // full-u64 sequences — the wrapping zigzag arithmetic must
        // round-trip every address bit-identically.
        let addrs = [
            0u64,
            1,
            u64::MAX,
            u64::MAX - 1,
            0,
            layout::PAGE_BASE,
            layout::LOCK_TABLE_BASE + 7,
            layout::LOCK_TABLE_BASE + 7,
            1 << 33,
            (1 << 33) + 5,
            layout::LOG_BASE,
            u64::MAX / 2,
            3,
            i64::MAX as u64,
            i64::MAX as u64 + 1,
        ];
        let mut enc = DELTA_BASES;
        let mut buf = Vec::new();
        for &a in &addrs {
            encode_addr(a, &mut enc, &mut buf);
        }
        let mut dec = DELTA_BASES;
        let mut off = 0usize;
        for &a in &addrs {
            assert_eq!(decode_addr_mut(&buf, &mut off, &mut dec), a);
        }
        assert_eq!(off, buf.len(), "decoder consumed the stream exactly");
        assert_eq!(enc, dec, "encoder and decoder bases stay in step");
    }

    #[test]
    fn delta_codec_exploits_region_locality() {
        // An op-body-shaped access pattern: catalog entry, lock bucket, a
        // short page run, sequential log blocks, then the same pattern
        // again. Region-crossing costs nothing (each region keeps its own
        // base), so the whole thing averages ≲ 2 bytes per address.
        let mut addrs = Vec::new();
        for op in 0..8u64 {
            addrs.push(layout::METADATA_BASE + 3);
            addrs.push(layout::LOCK_TABLE_BASE + 100 + op * 17);
            for b in 0..4 {
                addrs.push(layout::PAGE_BASE + op * 128 + b);
            }
            addrs.push(layout::LOG_BASE + op);
        }
        let mut enc = DELTA_BASES;
        let mut buf = Vec::new();
        for &a in &addrs {
            encode_addr(a, &mut enc, &mut buf);
        }
        assert!(
            buf.len() <= addrs.len() * 2,
            "{} bytes for {} addresses",
            buf.len(),
            addrs.len()
        );
        // And the raw form is ≥ 3x larger — the BENCH_6 shrink criterion
        // in miniature.
        assert!(addrs.len() * 8 >= buf.len() * 3);
    }
}
