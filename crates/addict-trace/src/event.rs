//! The trace format: per-transaction event sequences with transaction and
//! operation markers — the "indicators to identify the transactions and
//! database operations" Algorithm 1 takes as input.

use addict_sim::BlockAddr;
use serde::{Deserialize, Serialize};

/// Workload-specific transaction type (e.g. TPC-C NewOrder). Names live in
/// [`WorkloadTrace::xct_type_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XctTypeId(pub u16);

/// The five database operations of Section 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Read-only point lookup (`index probe`).
    Probe,
    /// Read-only range scan (`index scan`).
    Scan,
    /// In-place record rewrite (`update tuple`).
    Update,
    /// Record + index-entry creation (`insert tuple`).
    Insert,
    /// Record + index-entry removal (`delete tuple`).
    Delete,
}

impl OpKind {
    /// All operation kinds.
    pub const ALL: [OpKind; 5] = [
        OpKind::Probe,
        OpKind::Scan,
        OpKind::Update,
        OpKind::Insert,
        OpKind::Delete,
    ];

    /// Lower-case name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Probe => "probe",
            OpKind::Scan => "scan",
            OpKind::Update => "update",
            OpKind::Insert => "insert",
            OpKind::Delete => "delete",
        }
    }
}

/// One event of a transaction's execution trace.
///
/// Instruction events are run-length encoded: a straight-line walk through
/// `n_blocks` consecutive blocks is one event, not `n_blocks` events. Use
/// [`flatten`] (or [`XctTrace::flat_events`]) to iterate block-by-block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Transaction entry (the type repeats the owning trace's type).
    XctBegin {
        /// Transaction type beginning here.
        xct_type: XctTypeId,
    },
    /// Transaction exit.
    XctEnd,
    /// Database-operation entry.
    OpBegin {
        /// Operation kind.
        op: OpKind,
    },
    /// Database-operation exit.
    OpEnd {
        /// Operation kind (mirrors the matching [`TraceEvent::OpBegin`]).
        op: OpKind,
    },
    /// Sequential execution through `n_blocks` instruction blocks starting
    /// at `block`, charging `ipb` instructions per block.
    Instr {
        /// First instruction block of the run.
        block: BlockAddr,
        /// Number of consecutive blocks walked.
        n_blocks: u16,
        /// Dynamic instructions charged per block visit.
        ipb: u16,
    },
    /// One data access.
    Data {
        /// Data block touched.
        block: BlockAddr,
        /// Store (true) or load (false).
        write: bool,
    },
}

/// A block-granular view of a [`TraceEvent`] stream: instruction runs are
/// expanded to one item per block. This is what schedulers replay and what
/// Algorithm 1 consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatEvent {
    /// Transaction entry.
    XctBegin(XctTypeId),
    /// Transaction exit.
    XctEnd,
    /// Operation entry.
    OpBegin(OpKind),
    /// Operation exit.
    OpEnd(OpKind),
    /// `n_instr` instructions executed in `block`.
    Instr {
        /// Instruction block.
        block: BlockAddr,
        /// Instructions charged to this visit.
        n_instr: u16,
    },
    /// One data access.
    Data {
        /// Data block.
        block: BlockAddr,
        /// Store (true) or load (false).
        write: bool,
    },
}

/// Expand run-length-encoded events into per-block [`FlatEvent`]s.
pub fn flatten(events: &[TraceEvent]) -> impl Iterator<Item = FlatEvent> + '_ {
    events.iter().flat_map(|e| {
        // Each TraceEvent yields either one marker/data item or a run of
        // instruction blocks; model both as a small iterator.
        let (single, run): (Option<FlatEvent>, Option<(BlockAddr, u16, u16)>) = match *e {
            TraceEvent::XctBegin { xct_type } => (Some(FlatEvent::XctBegin(xct_type)), None),
            TraceEvent::XctEnd => (Some(FlatEvent::XctEnd), None),
            TraceEvent::OpBegin { op } => (Some(FlatEvent::OpBegin(op)), None),
            TraceEvent::OpEnd { op } => (Some(FlatEvent::OpEnd(op)), None),
            TraceEvent::Data { block, write } => (Some(FlatEvent::Data { block, write }), None),
            TraceEvent::Instr {
                block,
                n_blocks,
                ipb,
            } => (None, Some((block, n_blocks, ipb))),
        };
        single
            .into_iter()
            .chain(run.into_iter().flat_map(|(block, n_blocks, ipb)| {
                (0..u64::from(n_blocks)).map(move |i| FlatEvent::Instr {
                    block: BlockAddr(block.0 + i),
                    n_instr: ipb,
                })
            }))
    })
}

/// The recorded trace of one transaction instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XctTrace {
    /// Transaction type.
    pub xct_type: XctTypeId,
    /// Event sequence, bracketed by `XctBegin` / `XctEnd`.
    pub events: Vec<TraceEvent>,
}

impl XctTrace {
    /// Total dynamic instructions in the trace.
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Instr { n_blocks, ipb, .. } => u64::from(*n_blocks) * u64::from(*ipb),
                _ => 0,
            })
            .sum()
    }

    /// Number of instruction-block accesses (after run expansion).
    pub fn instr_accesses(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
                _ => 0,
            })
            .sum()
    }

    /// Iterate block-granular events.
    pub fn flat_events(&self) -> impl Iterator<Item = FlatEvent> + '_ {
        flatten(&self.events)
    }

    /// Number of data accesses.
    pub fn data_accesses(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Data { .. }))
            .count() as u64
    }

    /// Iterate over the operations in the trace: `(kind, event range)`.
    /// The range covers the events strictly between `OpBegin` and `OpEnd`.
    pub fn op_slices(&self) -> Vec<(OpKind, std::ops::Range<usize>)> {
        let mut out = Vec::new();
        let mut open: Option<(OpKind, usize)> = None;
        for (i, e) in self.events.iter().enumerate() {
            match e {
                TraceEvent::OpBegin { op } => {
                    debug_assert!(open.is_none(), "nested operations are not emitted");
                    open = Some((*op, i + 1));
                }
                TraceEvent::OpEnd { op } => {
                    let (kind, start) = open.take().expect("OpEnd without OpBegin");
                    debug_assert_eq!(kind, *op);
                    out.push((kind, start..i));
                }
                _ => {}
            }
        }
        debug_assert!(open.is_none(), "unclosed operation");
        out
    }
}

// Thread-safety audit: parallel sweeps (addict-bench) share trace slices
// across worker threads by reference for the whole grid's lifetime.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<TraceEvent>();
    shared::<FlatEvent>();
    shared::<XctTrace>();
    shared::<WorkloadTrace>();
};

/// A named batch of transaction traces (one workload run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Workload name ("TPC-B", "TPC-C", "TPC-E").
    pub name: String,
    /// Transaction type names, indexed by [`XctTypeId`].
    pub xct_type_names: Vec<String>,
    /// The traces, in generation order.
    pub xcts: Vec<XctTrace>,
}

impl WorkloadTrace {
    /// Name of a transaction type.
    pub fn type_name(&self, id: XctTypeId) -> &str {
        &self.xct_type_names[id.0 as usize]
    }

    /// Total dynamic instructions across all traces.
    pub fn instructions(&self) -> u64 {
        self.xcts.iter().map(XctTrace::instructions).sum()
    }

    /// Traces of one transaction type.
    pub fn of_type(&self, id: XctTypeId) -> impl Iterator<Item = &XctTrace> {
        self.xcts.iter().filter(move |x| x.xct_type == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XctTrace {
        XctTrace {
            xct_type: XctTypeId(0),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(0),
                },
                TraceEvent::Instr {
                    block: BlockAddr(1),
                    n_blocks: 1,
                    ipb: 10,
                },
                TraceEvent::OpBegin { op: OpKind::Probe },
                TraceEvent::Instr {
                    block: BlockAddr(2),
                    n_blocks: 2,
                    ipb: 6,
                },
                TraceEvent::Data {
                    block: BlockAddr(1000),
                    write: false,
                },
                TraceEvent::OpEnd { op: OpKind::Probe },
                TraceEvent::OpBegin { op: OpKind::Update },
                TraceEvent::Instr {
                    block: BlockAddr(3),
                    n_blocks: 1,
                    ipb: 8,
                },
                TraceEvent::Data {
                    block: BlockAddr(1000),
                    write: true,
                },
                TraceEvent::OpEnd { op: OpKind::Update },
                TraceEvent::XctEnd,
            ],
        }
    }

    #[test]
    fn counters() {
        let t = sample();
        assert_eq!(t.instructions(), 10 + 12 + 8);
        assert_eq!(t.instr_accesses(), 4);
        assert_eq!(t.data_accesses(), 2);
    }

    #[test]
    fn flatten_expands_runs_in_order() {
        let t = sample();
        let flat: Vec<_> = t.flat_events().collect();
        // 11 raw events, one of which is a 2-block run -> 12 flat items.
        assert_eq!(flat.len(), 12);
        assert_eq!(flat[0], FlatEvent::XctBegin(XctTypeId(0)));
        assert_eq!(
            flat[3],
            FlatEvent::Instr {
                block: BlockAddr(2),
                n_instr: 6
            }
        );
        assert_eq!(
            flat[4],
            FlatEvent::Instr {
                block: BlockAddr(3),
                n_instr: 6
            }
        );
        assert_eq!(*flat.last().unwrap(), FlatEvent::XctEnd);
        // Instruction totals agree between the two views.
        let flat_instr: u64 = flat
            .iter()
            .map(|e| match e {
                FlatEvent::Instr { n_instr, .. } => u64::from(*n_instr),
                _ => 0,
            })
            .sum();
        assert_eq!(flat_instr, t.instructions());
    }

    #[test]
    fn op_slices_cover_operations() {
        let t = sample();
        let ops = t.op_slices();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0, OpKind::Probe);
        assert_eq!(ops[0].1, 3..5);
        assert_eq!(ops[1].0, OpKind::Update);
        assert_eq!(ops[1].1, 7..9);
        // The slices contain only the inner events.
        let inner = &t.events[ops[0].1.clone()];
        assert!(inner
            .iter()
            .all(|e| matches!(e, TraceEvent::Instr { .. } | TraceEvent::Data { .. })));
    }

    #[test]
    fn workload_type_filters() {
        let w = WorkloadTrace {
            name: "test".into(),
            xct_type_names: vec!["a".into(), "b".into()],
            xcts: vec![
                sample(),
                XctTrace {
                    xct_type: XctTypeId(1),
                    events: vec![],
                },
                sample(),
            ],
        };
        assert_eq!(w.of_type(XctTypeId(0)).count(), 2);
        assert_eq!(w.of_type(XctTypeId(1)).count(), 1);
        assert_eq!(w.type_name(XctTypeId(1)), "b");
        assert_eq!(w.instructions(), 60);
    }

    #[test]
    fn op_names_match_paper() {
        assert_eq!(OpKind::Probe.name(), "probe");
        assert_eq!(OpKind::ALL.len(), 5);
    }
}
