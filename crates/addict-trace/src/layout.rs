//! The synthetic address-space layout.
//!
//! All trace addresses are 64-byte block numbers ([`addict_sim::BlockAddr`]).
//! Instruction and data live in disjoint regions so analyses can classify a
//! block by address alone:
//!
//! ```text
//! 0x0010_0000 ..             storage-manager code (codemap regions)
//! 0x0100_0000 ..             catalog / schema metadata
//! 0x0200_0000 ..             lock-manager hash table
//! 0x0300_0000 ..             buffer-pool control structures
//! 0x0400_0000 ..             log-buffer blocks
//! 0x1000_0000 ..             database pages (page_id * BLOCKS_PER_PAGE)
//! ```
//!
//! The frequently-shared data the paper observes (Section 2.2.2: "metadata
//! information, lock manager, buffer pool structures, and index root pages")
//! lives in the low data regions; record and leaf pages live in the sparse
//! page region where overlap across transactions is naturally rare.

use addict_sim::BlockAddr;

/// First instruction block of the code region.
pub const CODE_BASE: u64 = 0x0010_0000;
/// First block of catalog/schema metadata.
pub const METADATA_BASE: u64 = 0x0100_0000;
/// First block of the lock-manager hash table.
pub const LOCK_TABLE_BASE: u64 = 0x0200_0000;
/// First block of buffer-pool control structures.
pub const BUFFERPOOL_BASE: u64 = 0x0300_0000;
/// First block of the log buffer.
pub const LOG_BASE: u64 = 0x0400_0000;
/// First block of per-transaction private state (transaction descriptors,
/// cursors, lock lists — the thread-private data a migrating transaction
/// "leaves behind", Section 4.3 of the paper).
pub const XCT_STATE_BASE: u64 = 0x0500_0000;
/// First block of the database-page region.
pub const PAGE_BASE: u64 = 0x1000_0000;

/// Private-state blocks per live transaction.
pub const XCT_STATE_BLOCKS: u64 = 8;

/// Block address of private-state block `i` of transaction `xct`.
pub fn xct_state_block(xct: u64, i: u64) -> BlockAddr {
    // 2^20 concurrent descriptors cycle through the arena, like a real
    // transaction-object pool.
    BlockAddr(XCT_STATE_BASE + (xct % (1 << 20)) * XCT_STATE_BLOCKS + (i % XCT_STATE_BLOCKS))
}

/// Simulated page size (8 KB, Shore-MT's default).
pub const PAGE_BYTES: u64 = 8192;
/// Blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / 64;

/// Is this block an instruction block?
pub fn is_code(block: BlockAddr) -> bool {
    (CODE_BASE..METADATA_BASE).contains(&block.0)
}

/// Is this block a database-page block?
pub fn is_page(block: BlockAddr) -> bool {
    block.0 >= PAGE_BASE
}

/// Is this block one of the small shared service structures (metadata,
/// locks, buffer-pool control, log)?
pub fn is_service(block: BlockAddr) -> bool {
    (METADATA_BASE..PAGE_BASE).contains(&block.0)
}

/// Block address of byte `offset` within page `page_id`.
pub fn page_block(page_id: u64, offset: u64) -> BlockAddr {
    debug_assert!(offset < PAGE_BYTES, "offset {offset} beyond page");
    BlockAddr(PAGE_BASE + page_id * BLOCKS_PER_PAGE + offset / 64)
}

/// Block address of lock-table bucket `bucket`.
pub fn lock_bucket_block(bucket: u64) -> BlockAddr {
    BlockAddr(LOCK_TABLE_BASE + bucket)
}

/// Block address of buffer-pool frame-table entry `frame`.
pub fn bufferpool_block(frame: u64) -> BlockAddr {
    BlockAddr(BUFFERPOOL_BASE + frame / 4)
}

/// Block address of catalog entry for table/index `object_id`.
pub fn metadata_block(object_id: u64) -> BlockAddr {
    BlockAddr(METADATA_BASE + object_id)
}

/// Block address of the log buffer at byte offset `log_tail` (the log wraps
/// around a fixed in-memory window, like a real log buffer).
pub fn log_block(log_tail: u64) -> BlockAddr {
    const LOG_WINDOW_BLOCKS: u64 = 1024; // 64 KB in-memory log window
    BlockAddr(LOG_BASE + (log_tail / 64) % LOG_WINDOW_BLOCKS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let bases = [
            CODE_BASE,
            METADATA_BASE,
            LOCK_TABLE_BASE,
            BUFFERPOOL_BASE,
            LOG_BASE,
            PAGE_BASE,
        ];
        assert!(
            bases.windows(2).all(|w| w[0] < w[1]),
            "regions out of order: {bases:?}"
        );
    }

    #[test]
    fn classification() {
        assert!(is_code(BlockAddr(CODE_BASE)));
        assert!(!is_code(BlockAddr(METADATA_BASE)));
        assert!(is_page(page_block(0, 0)));
        assert!(is_service(lock_bucket_block(3)));
        assert!(is_service(metadata_block(1)));
        assert!(is_service(log_block(12345)));
        assert!(is_service(xct_state_block(7, 0)));
        assert!(!is_service(page_block(9, 100)));
    }

    #[test]
    fn xct_state_is_private_per_transaction() {
        // Distinct transactions get disjoint block runs.
        let a: Vec<_> = (0..XCT_STATE_BLOCKS)
            .map(|i| xct_state_block(1, i))
            .collect();
        let b: Vec<_> = (0..XCT_STATE_BLOCKS)
            .map(|i| xct_state_block(2, i))
            .collect();
        assert!(a.iter().all(|x| !b.contains(x)));
        // Indices wrap within the transaction's own run.
        assert_eq!(xct_state_block(1, 0), xct_state_block(1, XCT_STATE_BLOCKS));
    }

    #[test]
    fn page_blocks_distinct_across_pages() {
        let a = page_block(0, 0);
        let b = page_block(1, 0);
        assert_eq!(b.0 - a.0, BLOCKS_PER_PAGE);
        // Offsets within a page map within the page's block run.
        assert_eq!(page_block(0, 8191).0 - a.0, BLOCKS_PER_PAGE - 1);
    }

    #[test]
    fn log_wraps_in_window() {
        let first = log_block(0);
        let wrapped = log_block(1024 * 64);
        assert_eq!(first, wrapped);
        assert_ne!(log_block(0), log_block(64));
    }

    #[test]
    #[should_panic(expected = "beyond page")]
    #[cfg(debug_assertions)]
    fn page_offset_bounds_checked() {
        let _ = page_block(0, PAGE_BYTES);
    }
}
