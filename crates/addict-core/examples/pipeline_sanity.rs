//! End-to-end pipeline sanity check used during development: collect
//! traces, run Algorithm 1, replay all five schedulers, print the key
//! Figure 5/6/9 metrics. Not part of the published benches (those live in
//! `addict-bench`).

use addict_core::find_migration_points;
use addict_core::replay::ReplayConfig;
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_workloads::{collect_traces, Benchmark};

fn main() {
    let n_profile = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200usize);
    let n_eval = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200usize);

    for bench in [Benchmark::TpcB, Benchmark::TpcC, Benchmark::TpcE] {
        let t0 = std::time::Instant::now();
        let (mut engine, mut workload) = bench.setup();
        let profile = collect_traces(&mut engine, workload.as_mut(), n_profile, 1);
        let eval = collect_traces(&mut engine, workload.as_mut(), n_eval, 2);
        let cfg = ReplayConfig::paper_default();
        let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
        println!(
            "=== {} ({} profile + {} eval traces, setup {:.1}s) ===",
            bench.name(),
            profile.xcts.len(),
            eval.xcts.len(),
            t0.elapsed().as_secs_f64()
        );
        let avg_instr: f64 = eval
            .xcts
            .iter()
            .map(|t| t.instructions() as f64)
            .sum::<f64>()
            / eval.xcts.len() as f64;
        println!("    avg instructions/xct: {avg_instr:.0}");

        let mut baseline_cycles = 0.0;
        let mut baseline_latency = 0.0;
        let mut baseline = None;
        for kind in SchedulerKind::ALL {
            let t = std::time::Instant::now();
            let r = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
            if kind == SchedulerKind::Baseline {
                baseline_cycles = r.total_cycles;
                baseline_latency = r.avg_latency_cycles;
                baseline = Some(r.stats.clone());
            }
            let b = baseline.as_ref().expect("baseline first");
            println!(
                "  {:<9} cycles {:>12.0} ({:>5.2}x) lat {:>5.2}x  L1I-mpki {:>6.2} ({:>5.2}x)  L1D {:>6.2} ({:>5.2}x)  LLC {:>5.2} ({:>5.2}x)  sw/ki {:>6.3}  ovh {:>5.2}%  pwr {:>5.2}W  [{:.1}s]",
                r.scheduler,
                r.total_cycles,
                r.total_cycles / baseline_cycles,
                r.avg_latency_cycles / baseline_latency,
                r.stats.l1i_mpki(),
                r.stats.l1i_mpki() / b.l1i_mpki(),
                r.stats.l1d_mpki(),
                r.stats.l1d_mpki() / b.l1d_mpki(),
                r.stats.llc_mpki(),
                r.stats.llc_mpki() / b.llc_mpki().max(1e-9),
                r.stats.switches_per_ki(),
                100.0 * r.overhead_fraction(),
                r.power.per_core_power_w,
                t.elapsed().as_secs_f64(),
            );
        }
    }
}
