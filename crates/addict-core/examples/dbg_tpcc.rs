//! Development diagnostic: per-core utilization and plan shape for ADDICT
//! on TPC-C.

use addict_core::find_migration_points;
use addict_core::plan::{AssignmentPlan, PlanConfig};
use addict_core::replay::ReplayConfig;
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_workloads::{collect_traces, Benchmark};

fn main() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup();
    let profile = collect_traces(&mut engine, workload.as_mut(), 300, 1);
    let eval = collect_traces(&mut engine, workload.as_mut(), 300, 2);
    let cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
    let plan = AssignmentPlan::build(&map, PlanConfig::new(cfg.sim.n_cores));

    for ty in map.xct_types() {
        let name = &profile.xct_type_names[ty.0 as usize];
        let share = map.type_frequency(ty);
        let wrapper = map.wrapper_instructions(ty);
        println!("type {name} (n={share}) wrapper_instr={wrapper}");
        let xp = plan.of(ty).unwrap();
        println!("  entry slot cores: {:?}", xp.slots[xp.entry_slot].cores);
        for (op, p) in &xp.ops {
            println!(
                "  {:?}: freq={} instr={} entry_cores={:?} points={:?}",
                op,
                map.frequency(ty, *op),
                map.op_instructions(ty, *op),
                xp.slots[p.entry_slot].cores,
                p.points
                    .iter()
                    .map(|pt| &xp.slots[pt.slot].cores)
                    .collect::<Vec<_>>()
            );
        }
    }

    for kind in [SchedulerKind::Baseline, SchedulerKind::Addict] {
        let r = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        println!(
            "--- {} cycles={:.0} l1i_mpki={:.2}",
            r.scheduler,
            r.total_cycles,
            r.stats.l1i_mpki()
        );
        let max_i = r.stats.cores.iter().map(|c| c.instructions).max().unwrap();
        for (c, s) in r.stats.cores.iter().enumerate() {
            println!(
                "  core {c:2}: instr {:>10} ({:>5.1}%) l1i_miss {:>8} migr_in {:>6}",
                s.instructions,
                100.0 * s.instructions as f64 / max_i as f64,
                s.l1i_misses,
                s.migrations_in
            );
        }
    }
}
