//! Intra-replay parallelism: shard one replay's trace decoding across
//! worker threads without moving a single simulated event out of the
//! serial discrete-event order.
//!
//! The obvious way to parallelize the replay — splitting the simulated
//! cores into independently-clocked timestamp domains — changes results:
//! every machine effect (directory transactions, queue pushes, policy
//! consultations) is applied in the [`Cluster::earliest_of`] total order,
//! and any speculation/rollback scheme that reorders them produces a
//! *different*, not just differently-computed, `ReplayResult`. So this
//! module parallelizes the one phase that is order-free: **decoding**.
//! Walking a trace — resolving interned slices through the pool, splitting
//! instruction runs, gathering data runs — touches no shared machine
//! state and is a pure function of the trace. Workers pre-decode whole
//! traces into flat [`DecodedTrace`] packet lists; the merge thread runs
//! the *unchanged* serial engine ([`des_loop`]) over a [`ShardedView`]
//! that serves fetches from decoded packets when a worker got there
//! first and falls back to the underlying [`TraceSet`] inline otherwise.
//! Byte-identity is therefore by construction, not by protocol: the
//! engine observes the exact same [`Fetched`] sequence either way.
//!
//! Cores partition into contiguous shard ranges exactly the way block
//! addresses partition into LLC banks (`shard = core * shards / n_cores`);
//! each shard's worker decodes the traces initially placed on its cores,
//! in dispatch order, throttled to [`DECODE_AHEAD`] traces past the merge
//! frontier so memory stays bounded.
//!
//! [`Cluster::earliest_of`]: crate::replay::Cluster::earliest_of

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};

use addict_sim::{BlockAddr, DataAccess, Machine};
use addict_trace::event::FlatEvent;
use addict_trace::set::{DataRun, Fetched, TraceSet};
use addict_trace::XctTypeId;

use crate::replay::{des_loop, Admission, Policy, ReplayConfig, ReplayResult};

/// How many traces a shard's worker may decode past the merge frontier.
/// Bounds resident decoded memory to `shards * DECODE_AHEAD` traces.
const DECODE_AHEAD: usize = 64;

/// One replay step's worth of pre-decoded trace, exactly as the serial
/// engine would fetch it: instruction runs whole, markers singly, and
/// consecutive data accesses coalesced into maximal runs (so a decoded
/// gather returns the same run length the underlying layout would).
#[derive(Debug, Clone, Copy)]
enum Packet {
    /// A whole instruction run (`fetch` at offset `off` inside it reports
    /// `Run { block + off, n_blocks - off, ipb }`, like the flat layout).
    Run {
        /// First instruction block of the run.
        block: BlockAddr,
        /// Blocks in the run.
        n_blocks: u16,
        /// Dynamic instructions charged per block visit.
        ipb: u16,
    },
    /// A non-data, non-run event (transaction/operation markers).
    Marker(FlatEvent),
    /// A maximal run of consecutive data accesses, stored out-of-line in
    /// [`DecodedTrace::data`]. Maximality matters: two `Data` packets are
    /// never adjacent, so a decoded gather at offset `dpos` reports
    /// `len - dpos` accesses — identical to the underlying layout's scan.
    Data {
        /// Start index into [`DecodedTrace::data`].
        start: u32,
        /// Accesses in the run.
        len: u32,
    },
}

/// A fully decoded trace: the packet sequence plus the flattened data
/// accesses the `Data` packets point into.
#[derive(Debug, Default)]
struct DecodedTrace {
    packets: Vec<Packet>,
    data: Vec<DataAccess>,
}

/// Decode one whole trace by walking it through the [`TraceSet`] cursor
/// API — the same walk the serial engine performs, minus the machine.
fn decode_trace<T: TraceSet + ?Sized>(set: &T, tid: usize) -> DecodedTrace {
    let mut out = DecodedTrace::default();
    let mut run = DataRun::new();
    let mut cur = T::Cursor::default();
    loop {
        match set.fetch(tid, cur) {
            Fetched::End => break,
            Fetched::Run { block, rem, ipb } => {
                // The cursor always stands at a run head here (runs are
                // consumed whole below), so `rem` is the full run length.
                out.packets.push(Packet::Run {
                    block,
                    n_blocks: rem,
                    ipb,
                });
                set.advance_run(tid, &mut cur, rem, rem);
            }
            Fetched::Event(ev @ FlatEvent::Data { .. }) => {
                let n = set.gather_data_run(tid, cur, &mut run);
                if n == 0 {
                    // Defensive: a layout whose gather disagrees with its
                    // fetch. Fall back to a per-event packet.
                    out.packets.push(Packet::Marker(ev));
                    set.advance_event(tid, &mut cur, ev);
                    continue;
                }
                let start = out.data.len() as u32;
                out.data.extend_from_slice(run.accesses());
                out.packets.push(Packet::Data {
                    start,
                    len: n as u32,
                });
                set.advance_data_run(tid, &mut cur, n);
            }
            Fetched::Event(ev) => {
                out.packets.push(Packet::Marker(ev));
                set.advance_event(tid, &mut cur, ev);
            }
        }
    }
    out
}

/// Slot states: who owns `Slot::buf`.
const EMPTY: u8 = 0; // nobody started; worker may CAS to FILLING, merge to CLAIMED
const FILLING: u8 = 1; // the worker owns the buffer (mid-decode)
const READY: u8 = 2; // the worker published a decoded buffer
const CLAIMED: u8 = 3; // the merge thread owns the outcome; terminal

/// One trace's handoff cell between its shard worker and the merge thread.
///
/// The state machine makes buffer access exclusive: only the thread that
/// CASes `EMPTY -> FILLING` writes `buf`, and only the thread that CASes
/// `READY -> CLAIMED` (acquiring the worker's release store) reads it.
struct Slot {
    state: AtomicU8,
    buf: UnsafeCell<Option<Box<DecodedTrace>>>,
}

// SAFETY: `buf` is only touched under the state-machine ownership
// protocol documented on the type — never by two threads at once.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(EMPTY),
            buf: UnsafeCell::new(None),
        }
    }
}

/// Per-shard merge progress, used to throttle that shard's worker.
struct ShardProgress {
    /// Traces of this shard the merge has finished replaying.
    done: Mutex<usize>,
    cv: Condvar,
}

impl ShardProgress {
    fn new() -> Self {
        ShardProgress {
            done: Mutex::new(0),
            cv: Condvar::new(),
        }
    }
}

/// Block until decoding trace `pos` of this shard is within
/// [`DECODE_AHEAD`] of the merge frontier. Returns `false` on shutdown.
fn wait_for_headroom(progress: &ShardProgress, pos: usize, shutdown: &AtomicBool) -> bool {
    let mut done = progress.done.lock().unwrap_or_else(|e| e.into_inner());
    while pos >= *done + DECODE_AHEAD {
        if shutdown.load(Ordering::Relaxed) {
            return false;
        }
        done = progress.cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    true
}

/// A shard's worker: decode the traces initially placed on this shard's
/// cores, in dispatch order, skipping any the merge already started
/// inline.
fn decode_worker<T: TraceSet + ?Sized>(
    set: &T,
    owned: &[usize],
    slots: &[Slot],
    progress: &ShardProgress,
    shutdown: &AtomicBool,
) {
    for (pos, &tid) in owned.iter().enumerate() {
        if !wait_for_headroom(progress, pos, shutdown) || shutdown.load(Ordering::Relaxed) {
            return;
        }
        let slot = &slots[tid];
        if slot
            .state
            .compare_exchange(EMPTY, FILLING, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // The merge fetched this trace first (it replays inline) or
            // already finished it. Either way our decode would be wasted.
            continue;
        }
        let decoded = Box::new(decode_trace(set, tid));
        // SAFETY: we won the EMPTY -> FILLING CAS, so we exclusively own
        // `buf` until the release store below publishes it.
        unsafe { *slot.buf.get() = Some(decoded) };
        slot.state.store(READY, Ordering::Release);
    }
}

/// How the merge thread replays a given trace.
const MODE_UNSET: u8 = 0;
const MODE_INLINE: u8 = 1; // straight off the underlying TraceSet
const MODE_DECODED: u8 = 2; // off a worker's DecodedTrace

/// Cursor over a [`ShardedView`]: the underlying cursor (driven in inline
/// mode) plus the decoded-packet position (driven in decoded mode). Which
/// half is live is a per-trace property fixed at the first fetch, so the
/// dead half simply stays at its default.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardedCursor<C> {
    inner: C,
    /// Index into [`DecodedTrace::packets`].
    pkt: u32,
    /// Block offset inside the current `Run` packet.
    off: u16,
    /// Access offset inside the current `Data` packet.
    dpos: u32,
}

/// The merge thread's [`TraceSet`]: serves each trace either from its
/// worker-decoded packet list or straight from the underlying set —
/// whichever is available at the *first* fetch. Crucially the merge
/// **never blocks on a worker**: a trace still mid-decode (`FILLING`)
/// replays inline, so a slow worker can delay nothing, only waste its
/// own decode.
///
/// Deliberately `!Sync` (interior mutability via `Cell`/`RefCell`): it
/// lives on the merge thread only, which is exactly why [`des_loop`]
/// carries no `Sync` bound.
pub(crate) struct ShardedView<'a, T: ?Sized> {
    inner: &'a T,
    slots: &'a [Slot],
    progress: &'a [ShardProgress],
    /// Shard each trace's decode belongs to (by initial core placement).
    shard_of_tid: Vec<u16>,
    /// Replay mode per trace, resolved at first fetch.
    modes: Vec<Cell<u8>>,
    /// Whether the trace reached `End` (guards double-counting progress).
    finished: Vec<Cell<bool>>,
    /// Claimed decoded buffers, dropped as soon as their trace finishes.
    decoded: Vec<RefCell<Option<Box<DecodedTrace>>>>,
}

impl<'a, T: TraceSet + ?Sized> ShardedView<'a, T> {
    fn new(
        inner: &'a T,
        slots: &'a [Slot],
        progress: &'a [ShardProgress],
        shard_of_tid: Vec<u16>,
    ) -> Self {
        let n = inner.len();
        ShardedView {
            inner,
            slots,
            progress,
            shard_of_tid,
            modes: (0..n).map(|_| Cell::new(MODE_UNSET)).collect(),
            finished: (0..n).map(|_| Cell::new(false)).collect(),
            decoded: (0..n).map(|_| RefCell::new(None)).collect(),
        }
    }

    /// The trace's replay mode, locked in at the first call: claim the
    /// decoded buffer if the worker published one, otherwise go inline —
    /// never wait.
    fn mode_of(&self, idx: usize) -> u8 {
        let m = self.modes[idx].get();
        if m != MODE_UNSET {
            return m;
        }
        let slot = &self.slots[idx];
        let m = if slot
            .state
            .compare_exchange(EMPTY, CLAIMED, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            // Claimed before the worker got there: it will skip this tid.
            MODE_INLINE
        } else if slot
            .state
            .compare_exchange(READY, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the acquire CAS from READY pairs with the worker's
            // release store; we now exclusively own `buf`.
            let buf = unsafe { (*slot.buf.get()).take() };
            let got = buf.is_some();
            *self.decoded[idx].borrow_mut() = buf;
            if got {
                MODE_DECODED
            } else {
                MODE_INLINE
            }
        } else {
            // FILLING: the worker is mid-decode. Replaying inline is
            // always correct, so never wait (its buffer, published later,
            // is freed by `note_end` or when the slots drop).
            MODE_INLINE
        };
        self.modes[idx].set(m);
        m
    }

    /// Record that trace `idx` fetched `End`: release its decoded buffer,
    /// retire its slot, and advance its shard's merge frontier so the
    /// worker may decode further ahead. Idempotent.
    fn note_end(&self, idx: usize) {
        if self.finished[idx].get() {
            return;
        }
        self.finished[idx].set(true);
        *self.decoded[idx].borrow_mut() = None;
        let slot = &self.slots[idx];
        if slot
            .state
            .compare_exchange(EMPTY, CLAIMED, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && slot
                .state
                .compare_exchange(READY, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            // An inline-replayed trace whose decode finished anyway:
            // free the unused buffer now rather than at teardown.
            // SAFETY: the acquire CAS from READY grants buffer ownership.
            unsafe { *slot.buf.get() = None };
        }
        if let Some(p) = self.progress.get(usize::from(self.shard_of_tid[idx])) {
            let mut done = p.done.lock().unwrap_or_else(|e| e.into_inner());
            *done += 1;
            p.cv.notify_all();
        }
    }
}

impl<T: TraceSet + ?Sized> TraceSet for ShardedView<'_, T> {
    type Cursor = ShardedCursor<T::Cursor>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn xct_type(&self, idx: usize) -> XctTypeId {
        self.inner.xct_type(idx)
    }

    fn instructions_of(&self, idx: usize) -> u64 {
        self.inner.instructions_of(idx)
    }

    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
        let fetched = if self.mode_of(idx) == MODE_DECODED {
            let d = self.decoded[idx].borrow();
            match d.as_deref() {
                // Finished already (buffer released): only `End` remains.
                None => Fetched::End,
                Some(d) => match d.packets.get(cur.pkt as usize) {
                    None => Fetched::End,
                    Some(&Packet::Run {
                        block,
                        n_blocks,
                        ipb,
                    }) => Fetched::Run {
                        block: BlockAddr(block.0 + u64::from(cur.off)),
                        rem: n_blocks - cur.off,
                        ipb,
                    },
                    Some(&Packet::Marker(ev)) => Fetched::Event(ev),
                    Some(&Packet::Data { start, .. }) => {
                        let a = d.data[(start + cur.dpos) as usize];
                        Fetched::Event(FlatEvent::Data {
                            block: a.block,
                            write: a.write,
                        })
                    }
                },
            }
        } else {
            self.inner.fetch(idx, cur.inner)
        };
        if matches!(fetched, Fetched::End) {
            self.note_end(idx);
        }
        fetched
    }

    fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
        if self.mode_of(idx) == MODE_DECODED {
            debug_assert!(k >= 1 && k <= rem);
            if k == rem {
                cur.pkt += 1;
                cur.off = 0;
            } else {
                cur.off += k;
            }
        } else {
            self.inner.advance_run(idx, &mut cur.inner, rem, k);
        }
    }

    fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent) {
        if self.mode_of(idx) == MODE_DECODED {
            let d = self.decoded[idx].borrow();
            let Some(d) = d.as_deref() else { return };
            match d.packets.get(cur.pkt as usize) {
                Some(&Packet::Data { len, .. }) => {
                    cur.dpos += 1;
                    if cur.dpos == len {
                        cur.pkt += 1;
                        cur.dpos = 0;
                    }
                }
                _ => {
                    cur.pkt += 1;
                    cur.dpos = 0;
                }
            }
        } else {
            self.inner.advance_event(idx, &mut cur.inner, ev);
        }
    }

    fn gather_data_run(&self, idx: usize, cur: Self::Cursor, run: &mut DataRun) -> usize {
        if self.mode_of(idx) == MODE_DECODED {
            run.clear();
            let d = self.decoded[idx].borrow();
            let Some(d) = d.as_deref() else { return 0 };
            let Some(&Packet::Data { start, len }) = d.packets.get(cur.pkt as usize) else {
                return 0;
            };
            // `Data` packets are maximal runs, so the gather is exactly
            // this packet's remainder — same length the underlying
            // layout's scan would report.
            for a in &d.data[(start + cur.dpos) as usize..(start + len) as usize] {
                run.push(*a);
            }
            (len - cur.dpos) as usize
        } else {
            self.inner.gather_data_run(idx, cur.inner, run)
        }
    }

    fn advance_data_run(&self, idx: usize, cur: &mut Self::Cursor, k: usize) {
        if self.mode_of(idx) == MODE_DECODED {
            let d = self.decoded[idx].borrow();
            let Some(d) = d.as_deref() else { return };
            let Some(&Packet::Data { len, .. }) = d.packets.get(cur.pkt as usize) else {
                debug_assert!(false, "advance_data_run off a data packet");
                return;
            };
            debug_assert!(k as u32 <= len - cur.dpos);
            cur.dpos += k as u32;
            if cur.dpos == len {
                cur.pkt += 1;
                cur.dpos = 0;
            }
        } else {
            self.inner.advance_data_run(idx, &mut cur.inner, k);
        }
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        // Decoded traces live in per-shard buffers the merge just
        // claimed (still warm); only inline-fallback traces walk the
        // inner set's cold storage.
        if self.mode_of(idx) != MODE_DECODED {
            self.inner.prefetch(idx);
        }
    }
}

/// On drop (normal return or merge panic), wake every parked worker so
/// the scope's implicit join can never deadlock.
struct ShutdownGuard<'a> {
    shutdown: &'a AtomicBool,
    progress: &'a [ShardProgress],
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for p in self.progress {
            let _done = p.done.lock().unwrap_or_else(|e| e.into_inner());
            p.cv.notify_all();
        }
    }
}

/// Run one replay with its trace decoding sharded across `shards` worker
/// threads (the merge — the serial engine itself — runs on the calling
/// thread). Byte-identical to [`des_loop`] over `traces` directly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded<T: TraceSet + Sync + ?Sized, P: Policy>(
    machine: &mut Machine,
    traces: &T,
    pending: VecDeque<(usize, usize, usize)>,
    policy: &mut P,
    scheduler_name: &str,
    cfg: &ReplayConfig,
    admission: &Admission,
    shards: usize,
) -> ReplayResult {
    let n_cores = machine.n_cores().max(1);
    let n = traces.len();
    // Contiguous core ranges map to shards the way blocks map to LLC
    // banks; a trace decodes on the shard of its initial placement core.
    let mut shard_of_tid = vec![0u16; n];
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for &(tid, core, _batch) in &pending {
        let s = (core.min(n_cores - 1) * shards) / n_cores;
        shard_of_tid[tid] = s as u16;
        owned[s].push(tid);
    }
    let slots: Vec<Slot> = (0..n).map(|_| Slot::new()).collect();
    let progress: Vec<ShardProgress> = (0..shards).map(|_| ShardProgress::new()).collect();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for (s, tids) in owned.iter().enumerate() {
            if tids.is_empty() {
                continue;
            }
            let (slots, progress, shutdown) = (&slots, &progress[s], &shutdown);
            scope.spawn(move || decode_worker(traces, tids, slots, progress, shutdown));
        }
        // Declared after the spawns, inside the scope closure: drops (and
        // wakes the workers) before the scope's implicit join, even if
        // the merge below panics.
        let _guard = ShutdownGuard {
            shutdown: &shutdown,
            progress: &progress,
        };
        let view = ShardedView::new(traces, &slots, &progress, shard_of_tid);
        des_loop(
            machine,
            &view,
            pending,
            policy,
            scheduler_name,
            cfg,
            admission,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_sim::SimConfig;
    use addict_trace::event::{OpKind, TraceEvent, XctTrace};
    use addict_trace::set::flat_events_of;

    fn mini_traces() -> Vec<XctTrace> {
        (0..6u64)
            .map(|i| XctTrace {
                xct_type: XctTypeId((i % 2) as u16),
                events: vec![
                    TraceEvent::XctBegin {
                        xct_type: XctTypeId((i % 2) as u16),
                    },
                    TraceEvent::OpBegin { op: OpKind::Probe },
                    TraceEvent::Instr {
                        block: BlockAddr(0x40 + i * 0x100),
                        n_blocks: 4,
                        ipb: 5,
                    },
                    TraceEvent::Data {
                        block: BlockAddr(0x9000 + i * 64),
                        write: i % 2 == 0,
                    },
                    TraceEvent::Data {
                        block: BlockAddr(0x9000),
                        write: true,
                    },
                    TraceEvent::Instr {
                        block: BlockAddr(0x80 + i * 0x100),
                        n_blocks: 2,
                        ipb: 3,
                    },
                    TraceEvent::OpEnd { op: OpKind::Probe },
                    TraceEvent::XctEnd,
                ],
            })
            .collect()
    }

    /// A view whose every trace was decoded (worker won every slot) walks
    /// to the identical flat event sequence as the underlying set, and
    /// its gathers report the identical runs at every position.
    #[test]
    fn decoded_view_is_observationally_identical() {
        let traces = mini_traces();
        let set = traces.as_slice();
        let n = TraceSet::len(set);
        let slots: Vec<Slot> = (0..n).map(|_| Slot::new()).collect();
        for (tid, slot) in slots.iter().enumerate() {
            unsafe { *slot.buf.get() = Some(Box::new(decode_trace(set, tid))) };
            slot.state.store(READY, Ordering::Release);
        }
        let progress = [ShardProgress::new()];
        let view = ShardedView::new(set, &slots, &progress, vec![0u16; n]);
        for tid in 0..n {
            assert_eq!(flat_events_of(&view, tid), flat_events_of(set, tid));
            assert_eq!(view.modes[tid].get(), MODE_DECODED, "decode was claimed");
        }
        // Gather equivalence at every data position of trace 0 — on a
        // fresh view, since the walk above already retired every trace
        // (a finished trace only fetches `End`).
        let slots: Vec<Slot> = (0..n).map(|_| Slot::new()).collect();
        for (tid, slot) in slots.iter().enumerate() {
            unsafe { *slot.buf.get() = Some(Box::new(decode_trace(set, tid))) };
            slot.state.store(READY, Ordering::Release);
        }
        let view = ShardedView::new(set, &slots, &progress, vec![0u16; n]);
        let mut vc = <ShardedView<'_, [XctTrace]> as TraceSet>::Cursor::default();
        let mut uc = <[XctTrace] as TraceSet>::Cursor::default();
        let mut vrun = DataRun::new();
        let mut urun = DataRun::new();
        loop {
            let n = view.gather_data_run(0, vc, &mut vrun);
            assert_eq!(set.gather_data_run(0, uc, &mut urun), n);
            assert_eq!(vrun.accesses(), urun.accesses());
            if n > 0 {
                // Consume partially so mid-run positions are exercised.
                let k = 1.max(n / 2);
                view.advance_data_run(0, &mut vc, k);
                set.advance_data_run(0, &mut uc, k);
                continue;
            }
            match set.fetch(0, uc) {
                Fetched::End => {
                    assert!(matches!(view.fetch(0, vc), Fetched::End));
                    break;
                }
                Fetched::Run { rem, .. } => {
                    view.advance_run(0, &mut vc, rem, 1);
                    set.advance_run(0, &mut uc, rem, 1);
                }
                Fetched::Event(ev) => {
                    view.advance_event(0, &mut vc, ev);
                    set.advance_event(0, &mut uc, ev);
                }
            }
        }
    }

    /// A merge that claims a slot first replays inline and the worker
    /// skips it; `note_end` retires slots and frees unused buffers.
    #[test]
    fn inline_claim_beats_worker_and_end_retires_slots() {
        let traces = mini_traces();
        let set = traces.as_slice();
        let n = TraceSet::len(set);
        let slots: Vec<Slot> = (0..n).map(|_| Slot::new()).collect();
        let progress = [ShardProgress::new()];
        let view = ShardedView::new(set, &slots, &progress, vec![0u16; n]);
        // First fetch claims EMPTY -> inline mode.
        assert!(matches!(
            view.fetch(0, Default::default()),
            Fetched::Event(_)
        ));
        assert_eq!(view.modes[0].get(), MODE_INLINE);
        assert_eq!(slots[0].state.load(Ordering::Relaxed), CLAIMED);
        // The worker now skips tid 0 entirely and decodes the rest.
        let shutdown = AtomicBool::new(false);
        let owned: Vec<usize> = (0..n).collect();
        decode_worker(set, &owned, &slots, &progress[0], &shutdown);
        assert_eq!(slots[0].state.load(Ordering::Relaxed), CLAIMED);
        assert_eq!(slots[1].state.load(Ordering::Relaxed), READY);
        // Replay trace 1 from its decode, to End: slot retires, the
        // buffer is released, and the shard frontier advances.
        assert_eq!(flat_events_of(&view, 1), flat_events_of(set, 1));
        assert_eq!(view.modes[1].get(), MODE_DECODED);
        assert_eq!(slots[1].state.load(Ordering::Relaxed), CLAIMED);
        assert!(view.decoded[1].borrow().is_none());
        assert_eq!(*progress[0].done.lock().unwrap(), 1);
    }

    /// The tentpole contract, end to end on the real engine: a sharded
    /// replay serializes byte-identically to the serial one.
    #[test]
    fn sharded_replay_is_byte_identical() {
        struct Noop;
        impl Policy for Noop {
            fn segment_granular(&self) -> bool {
                true
            }
            fn data_run_granular(&self) -> bool {
                true
            }
            fn observes_misses(&self) -> bool {
                false
            }
        }
        let traces = mini_traces();
        let order: Vec<usize> = (0..traces.len()).collect();
        let run = |shards: usize| {
            let cfg = ReplayConfig {
                sim: SimConfig::paper_default().with_cores(4),
                ..ReplayConfig::paper_default()
            }
            .with_shards(shards);
            let mut machine = Machine::new(&cfg.sim);
            let r = crate::replay::run_des(
                &mut machine,
                traces.as_slice(),
                &order,
                |i, _| i % 4,
                &mut Noop,
                "noop",
                &cfg,
            );
            format!("{r:#?}")
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "2-shard replay diverged");
        assert_eq!(run(4), serial, "4-shard replay diverged");
        // Over-asking is clamped to the core count, not an error.
        assert_eq!(run(64), serial, "clamped-shard replay diverged");
    }
}
