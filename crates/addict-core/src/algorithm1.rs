//! Algorithm 1: finding migration points.
//!
//! ADDICT replays profiling traces through a single, initially empty L1-I
//! model. Transaction and operation entry/exit markers flush the cache; so
//! does every access that evicts a line. Each eviction-causing instruction
//! address is appended to the current operation's candidate sequence, and
//! the most frequent sequence per (transaction type, operation) becomes
//! that operation's migration points (Section 3.1).
//!
//! Ties are broken deterministically (lexicographically smallest sequence)
//! instead of the paper's "pick randomly" so runs are reproducible; the
//! paper reports never observing ties on these workloads either.

use std::collections::HashMap;

use addict_sim::{BlockAddr, CacheGeometry, SetAssocCache};
use addict_trace::event::FlatEvent;
use addict_trace::{OpKind, XctTrace, XctTypeId};

/// A migration-point sequence: the eviction-causing instruction blocks of
/// one operation execution, in order.
pub type Sequence = Vec<BlockAddr>;

/// The chosen migration points and profiling statistics.
#[derive(Debug, Clone, Default)]
pub struct MigrationMap {
    /// Chosen sequence per (transaction type, operation).
    chosen: HashMap<(XctTypeId, OpKind), Sequence>,
    /// How many times each candidate sequence appeared.
    counts: HashMap<(XctTypeId, OpKind), HashMap<Sequence, u64>>,
    /// Operation invocation counts per transaction type (drives load
    /// balancing in Step 2).
    op_frequency: HashMap<(XctTypeId, OpKind), u64>,
    /// Profiled transactions per type (drives cross-type core placement).
    type_frequency: HashMap<XctTypeId, u64>,
    /// Total instructions executed inside each operation across profiling
    /// (drives work-proportional core replication in Step 2).
    op_instructions: HashMap<(XctTypeId, OpKind), u64>,
    /// Instructions executed outside any operation (begin/commit wrapper).
    wrapper_instructions: HashMap<XctTypeId, u64>,
}

impl MigrationMap {
    /// The chosen migration points for an operation of a transaction type.
    pub fn points(&self, xct: XctTypeId, op: OpKind) -> Option<&Sequence> {
        self.chosen.get(&(xct, op))
    }

    /// Transaction types seen during profiling.
    pub fn xct_types(&self) -> Vec<XctTypeId> {
        let mut v: Vec<XctTypeId> = self.chosen.keys().map(|&(x, _)| x).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Operations profiled for a transaction type, sorted by kind.
    pub fn ops_of(&self, xct: XctTypeId) -> Vec<OpKind> {
        let mut v: Vec<OpKind> = self
            .chosen
            .keys()
            .filter(|&&(x, _)| x == xct)
            .map(|&(_, o)| o)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of times `op` was invoked by `xct` transactions during
    /// profiling.
    pub fn frequency(&self, xct: XctTypeId, op: OpKind) -> u64 {
        self.op_frequency.get(&(xct, op)).copied().unwrap_or(0)
    }

    /// Number of profiled transactions of type `xct`.
    pub fn type_frequency(&self, xct: XctTypeId) -> u64 {
        self.type_frequency.get(&xct).copied().unwrap_or(0)
    }

    /// Total instructions profiled inside `op` of `xct` transactions.
    pub fn op_instructions(&self, xct: XctTypeId, op: OpKind) -> u64 {
        self.op_instructions.get(&(xct, op)).copied().unwrap_or(0)
    }

    /// Total wrapper (outside-operation) instructions of `xct`.
    pub fn wrapper_instructions(&self, xct: XctTypeId) -> u64 {
        self.wrapper_instructions.get(&xct).copied().unwrap_or(0)
    }

    /// All candidate sequences and their occurrence counts (diagnostics,
    /// the Section 3.1.2 example).
    pub fn candidates(&self, xct: XctTypeId, op: OpKind) -> Option<&HashMap<Sequence, u64>> {
        self.counts.get(&(xct, op))
    }

    /// Fraction of operation instances whose sequence exactly matches the
    /// chosen one — the Figure 4 stability metric — measured over fresh
    /// traces.
    pub fn stability(
        &self,
        traces: &[XctTrace],
        l1i: CacheGeometry,
        xct: XctTypeId,
        op: OpKind,
    ) -> Option<f64> {
        let chosen = self.points(xct, op)?;
        let mut matched = 0u64;
        let mut total = 0u64;
        for trace in traces.iter().filter(|t| t.xct_type == xct) {
            for (kind, seq) in per_instance_sequences(trace, l1i) {
                if kind == op {
                    total += 1;
                    if &seq == chosen {
                        matched += 1;
                    }
                }
            }
        }
        (total > 0).then(|| matched as f64 / total as f64)
    }
}

/// Incremental Algorithm 1: observe profiling traces one at a time, then
/// [`finish`](Profiler::finish) into a [`MigrationMap`].
///
/// Trace-at-a-time observation is what lets interned profiling stay
/// compact: each [`InternedTrace`](addict_trace::InternedTrace) is
/// flattened transiently, observed, and dropped, so the whole uncompressed
/// trace set never materializes.
#[derive(Debug)]
pub struct Profiler {
    map: MigrationMap,
    l1i: CacheGeometry,
}

impl Profiler {
    /// A profiler over the given L1-I geometry.
    pub fn new(l1i: CacheGeometry) -> Self {
        Profiler {
            map: MigrationMap::default(),
            l1i,
        }
    }

    /// Feed one profiling trace (lines 1–16 of Algorithm 1).
    pub fn observe(&mut self, trace: &XctTrace) {
        let map = &mut self.map;
        *map.type_frequency.entry(trace.xct_type).or_insert(0) += 1;
        let (instances, wrapper) = scan_trace(trace, self.l1i);
        *map.wrapper_instructions.entry(trace.xct_type).or_insert(0) += wrapper;
        for (op, seq, instr) in instances {
            *map.op_frequency.entry((trace.xct_type, op)).or_insert(0) += 1;
            *map.op_instructions.entry((trace.xct_type, op)).or_insert(0) += instr;
            *map.counts
                .entry((trace.xct_type, op))
                .or_default()
                .entry(seq)
                .or_insert(0) += 1;
        }
    }

    /// Choose the winning sequences (line 17: most frequent; ties break to
    /// the lexicographically smallest for determinism).
    pub fn finish(self) -> MigrationMap {
        let mut map = self.map;
        for (key, seqs) in &map.counts {
            let best = seqs
                .iter()
                .max_by(|(sa, ca), (sb, cb)| ca.cmp(cb).then_with(|| sb.cmp(sa)))
                .map(|(s, _)| s.clone())
                .expect("non-empty candidate set");
            map.chosen.insert(*key, best);
        }
        map
    }
}

/// Run Algorithm 1 over profiling traces with the given L1-I geometry.
pub fn find_migration_points(traces: &[XctTrace], l1i: CacheGeometry) -> MigrationMap {
    let mut p = Profiler::new(l1i);
    for trace in traces {
        p.observe(trace);
    }
    p.finish()
}

/// [`find_migration_points`] over interned profiling traces: each trace is
/// flattened transiently and observed, so memory stays bounded by one
/// trace, not the profile set.
pub fn find_migration_points_interned(
    set: addict_trace::InternedSet<'_>,
    l1i: CacheGeometry,
) -> MigrationMap {
    let mut p = Profiler::new(l1i);
    for trace in set.xcts {
        p.observe(&trace.flatten(set.pool));
    }
    p.finish()
}

/// The eviction sequences of every operation instance in one trace
/// (lines 1–16 of Algorithm 1).
pub fn per_instance_sequences(trace: &XctTrace, l1i: CacheGeometry) -> Vec<(OpKind, Sequence)> {
    scan_trace(trace, l1i)
        .0
        .into_iter()
        .map(|(op, seq, _)| (op, seq))
        .collect()
}

/// Full Algorithm 1 scan of one trace: per-operation eviction sequences
/// with instruction counts, plus the wrapper (outside-operation)
/// instruction count.
pub fn scan_trace(trace: &XctTrace, l1i: CacheGeometry) -> (Vec<(OpKind, Sequence, u64)>, u64) {
    let mut cache = SetAssocCache::new(l1i);
    let mut out = Vec::new();
    let mut wrapper = 0u64;
    let mut current: Option<(OpKind, Sequence, u64)> = None;
    for event in trace.flat_events() {
        match event {
            FlatEvent::XctBegin(_) | FlatEvent::XctEnd => cache.flush(),
            FlatEvent::OpBegin(op) => {
                cache.flush();
                current = Some((op, Vec::new(), 0));
            }
            FlatEvent::OpEnd(_) => {
                cache.flush();
                out.push(current.take().expect("OpEnd without OpBegin"));
            }
            FlatEvent::Instr { block, n_instr } => {
                match current.as_mut() {
                    Some((_, _, instr)) => *instr += u64::from(n_instr),
                    None => wrapper += u64::from(n_instr),
                }
                if cache.access(block).evicted.is_some() {
                    // Line 15-16: reset the cache, mark the point.
                    cache.flush();
                    cache.access(block);
                    if let Some((_, seq, _)) = current.as_mut() {
                        seq.push(block);
                    }
                }
            }
            FlatEvent::Data { .. } => {}
        }
    }
    (out, wrapper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::TraceEvent;

    const XT: XctTypeId = XctTypeId(0);

    /// Geometry small enough to force evictions quickly: 4 sets x 2 ways =
    /// 8 blocks.
    fn tiny_l1i() -> CacheGeometry {
        CacheGeometry::new(8 * 64, 2)
    }

    /// A trace running one `op` over `blocks` sequential instruction
    /// blocks starting at `base`.
    fn trace_with_op(op: OpKind, base: u64, blocks: u16) -> XctTrace {
        XctTrace {
            xct_type: XT,
            events: vec![
                TraceEvent::XctBegin { xct_type: XT },
                TraceEvent::OpBegin { op },
                TraceEvent::Instr {
                    block: BlockAddr(base),
                    n_blocks: blocks,
                    ipb: 10,
                },
                TraceEvent::OpEnd { op },
                TraceEvent::XctEnd,
            ],
        }
    }

    #[test]
    fn small_op_has_no_migration_points() {
        // 6 blocks into an 8-block cache: never evicts.
        let t = trace_with_op(OpKind::Probe, 0x100, 6);
        let seqs = per_instance_sequences(&t, tiny_l1i());
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].0, OpKind::Probe);
        assert!(seqs[0].1.is_empty());
    }

    #[test]
    fn oversized_op_yields_points_at_cache_fill_boundaries() {
        // 20 sequential blocks through an 8-block cache: the 9th distinct
        // block evicts (flush, point), then every 8 blocks after that.
        let t = trace_with_op(OpKind::Insert, 0x200, 20);
        let seqs = per_instance_sequences(&t, tiny_l1i());
        let seq = &seqs[0].1;
        assert_eq!(
            seq.len(),
            2,
            "20 blocks / 8-block window -> 2 overflows, got {seq:?}"
        );
        assert_eq!(seq[0], BlockAddr(0x208));
        assert_eq!(seq[1], BlockAddr(0x210));
    }

    #[test]
    fn most_frequent_sequence_is_chosen() {
        // Nine instances walk 20 blocks (two points); one walks 28 (three
        // points) — the common-case sequence must win, as in the paper's
        // Section 3.1.2 example.
        let mut traces: Vec<XctTrace> = (0..9)
            .map(|_| trace_with_op(OpKind::Insert, 0x200, 20))
            .collect();
        traces.push(trace_with_op(OpKind::Insert, 0x200, 28));
        let map = find_migration_points(&traces, tiny_l1i());
        let points = map.points(XT, OpKind::Insert).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(map.frequency(XT, OpKind::Insert), 10);
        let candidates = map.candidates(XT, OpKind::Insert).unwrap();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[points], 9);
    }

    #[test]
    fn sequences_are_per_operation_and_reset_at_boundaries() {
        // Two ops back to back; the second starts with a flushed cache, so
        // its points are independent of the first.
        let mut events = vec![TraceEvent::XctBegin { xct_type: XT }];
        events.push(TraceEvent::OpBegin { op: OpKind::Probe });
        events.push(TraceEvent::Instr {
            block: BlockAddr(0x300),
            n_blocks: 12,
            ipb: 10,
        });
        events.push(TraceEvent::OpEnd { op: OpKind::Probe });
        events.push(TraceEvent::OpBegin { op: OpKind::Update });
        events.push(TraceEvent::Instr {
            block: BlockAddr(0x300),
            n_blocks: 12,
            ipb: 10,
        });
        events.push(TraceEvent::OpEnd { op: OpKind::Update });
        events.push(TraceEvent::XctEnd);
        let t = XctTrace {
            xct_type: XT,
            events,
        };
        let seqs = per_instance_sequences(&t, tiny_l1i());
        assert_eq!(seqs.len(), 2);
        assert_eq!(
            seqs[0].1, seqs[1].1,
            "identical walks from a clean cache match"
        );
        assert_eq!(seqs[0].1.len(), 1); // 12 blocks -> one overflow
    }

    #[test]
    fn stability_matches_on_identical_traces() {
        let profile: Vec<XctTrace> = (0..5)
            .map(|_| trace_with_op(OpKind::Probe, 0x400, 20))
            .collect();
        let map = find_migration_points(&profile, tiny_l1i());
        let fresh: Vec<XctTrace> = (0..5)
            .map(|_| trace_with_op(OpKind::Probe, 0x400, 20))
            .collect();
        assert_eq!(
            map.stability(&fresh, tiny_l1i(), XT, OpKind::Probe),
            Some(1.0)
        );
        // Divergent traces do not match.
        let divergent: Vec<XctTrace> = (0..4)
            .map(|_| trace_with_op(OpKind::Probe, 0x400, 28))
            .collect();
        assert_eq!(
            map.stability(&divergent, tiny_l1i(), XT, OpKind::Probe),
            Some(0.0)
        );
        // Unknown op: None.
        assert_eq!(map.stability(&fresh, tiny_l1i(), XT, OpKind::Delete), None);
    }

    #[test]
    fn xct_types_and_ops_enumerated() {
        let mut traces = vec![trace_with_op(OpKind::Probe, 0x100, 20)];
        let mut t2 = trace_with_op(OpKind::Update, 0x200, 20);
        t2.xct_type = XctTypeId(1);
        traces.push(t2);
        let map = find_migration_points(&traces, tiny_l1i());
        assert_eq!(map.xct_types(), vec![XctTypeId(0), XctTypeId(1)]);
        assert_eq!(map.ops_of(XctTypeId(0)), vec![OpKind::Probe]);
        assert_eq!(map.ops_of(XctTypeId(1)), vec![OpKind::Update]);
    }
}
