//! Heterogeneous-core hinting (the paper's Section 6 outlook).
//!
//! "We envision ADDICT as a task scheduler on emerging heterogeneous
//! many-core processors where cores are specialized for various database
//! functionalities. In such a setting, ADDICT can also guide developers
//! while making decisions about which granularity each database operation
//! should be specialized at."
//!
//! This module turns a profiling run plus an assignment plan into exactly
//! that guidance: for every slot (action) it reports which storage-manager
//! routines the action executes and how large its instruction footprint
//! is — the specification a core specializer would start from.

use std::collections::{BTreeMap, BTreeSet};

use addict_sim::BlockAddr;
use addict_trace::codemap::{CodeMap, Routine};
use addict_trace::event::FlatEvent;
use addict_trace::{OpKind, XctTrace, XctTypeId};
use serde::Serialize;

use crate::plan::{AssignmentPlan, XctPlan};

/// The instruction profile of one slot (one action).
#[derive(Debug, Clone, Serialize)]
pub struct SlotProfile {
    /// Owning transaction type.
    pub xct_type: u16,
    /// Slot index within the type's plan.
    pub slot: usize,
    /// Human-readable role ("entry", "probe entry", "probe point 1", ...).
    pub role: String,
    /// Distinct instruction blocks the action touches.
    pub footprint_blocks: usize,
    /// Instructions executed in the action across the profiling traces.
    pub instructions: u64,
    /// Routines executed, with their block counts within the action,
    /// largest first.
    pub routines: Vec<(String, usize)>,
}

impl SlotProfile {
    /// Does this action fit an L1-I of `blocks` capacity? The whole point
    /// of ADDICT's granularity choice.
    pub fn fits_l1i(&self, blocks: usize) -> bool {
        self.footprint_blocks <= blocks
    }
}

/// Walk profiling traces through the plan's migration state machine,
/// attributing every instruction block to the slot that would execute it.
pub fn specialization_report(traces: &[XctTrace], plan: &AssignmentPlan) -> Vec<SlotProfile> {
    // (type, slot) -> (footprint, instructions)
    let mut acc: BTreeMap<(XctTypeId, usize), (BTreeSet<BlockAddr>, u64)> = BTreeMap::new();

    for trace in traces {
        let Some(xp) = plan.of(trace.xct_type) else {
            continue;
        };
        if xp.fallback {
            continue;
        }
        let mut slot = xp.entry_slot;
        let mut current_op: Option<OpKind> = None;
        let mut next_point = 0usize;
        for ev in trace.flat_events() {
            match ev {
                FlatEvent::XctBegin(_) => {
                    slot = xp.entry_slot;
                    current_op = None;
                }
                FlatEvent::OpBegin(op) => {
                    current_op = Some(op);
                    next_point = 0;
                    if let Some(p) = xp.ops.get(&op) {
                        slot = p.entry_slot;
                    }
                }
                FlatEvent::OpEnd(_) => {
                    current_op = None;
                    slot = xp.entry_slot;
                }
                FlatEvent::Instr { block, n_instr } => {
                    if let Some(op) = current_op {
                        if let Some(p) = xp.ops.get(&op) {
                            if next_point < p.points.len() && p.points[next_point].addr == block {
                                slot = p.points[next_point].slot;
                                next_point += 1;
                            }
                        }
                    }
                    let e = acc
                        .entry((trace.xct_type, slot))
                        .or_insert_with(|| (BTreeSet::new(), 0));
                    e.0.insert(block);
                    e.1 += u64::from(n_instr);
                }
                FlatEvent::Data { .. } | FlatEvent::XctEnd => {}
            }
        }
    }

    let map = CodeMap::global();
    let mut out = Vec::new();
    for ((ty, slot), (footprint, instructions)) in acc {
        let mut per_routine: BTreeMap<Routine, usize> = BTreeMap::new();
        for &b in &footprint {
            if let Some(r) = map.routine_of(b) {
                *per_routine.entry(r).or_insert(0) += 1;
            }
        }
        let mut routines: Vec<(String, usize)> = per_routine
            .into_iter()
            .map(|(r, n)| (format!("{r:?}"), n))
            .collect();
        routines.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let role = role_of(plan.of(ty).expect("profiled type"), slot);
        out.push(SlotProfile {
            xct_type: ty.0,
            slot,
            role,
            footprint_blocks: footprint.len(),
            instructions,
            routines,
        });
    }
    out
}

fn role_of(xp: &XctPlan, slot: usize) -> String {
    if slot == xp.entry_slot {
        return "transaction entry".to_owned();
    }
    for (op, p) in &xp.ops {
        if p.entry_slot == slot {
            return format!("{} entry", op.name());
        }
        for (i, point) in p.points.iter().enumerate() {
            if point.slot == slot {
                return format!("{} point {}", op.name(), i + 1);
            }
        }
    }
    "unused".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::find_migration_points;
    use crate::plan::PlanConfig;
    use addict_sim::CacheGeometry;
    use addict_trace::TraceEvent;

    const XT: XctTypeId = XctTypeId(0);

    fn trace() -> XctTrace {
        let map = CodeMap::global();
        let mut events = vec![TraceEvent::XctBegin { xct_type: XT }];
        events.push(TraceEvent::Instr {
            block: map.base(Routine::XctBegin),
            n_blocks: map.n_blocks(Routine::XctBegin) as u16,
            ipb: 10,
        });
        events.push(TraceEvent::OpBegin { op: OpKind::Probe });
        for r in [
            Routine::FindKey,
            Routine::BtreeLookup,
            Routine::BtreeTraverse,
        ] {
            events.push(TraceEvent::Instr {
                block: map.base(r),
                n_blocks: map.n_blocks(r) as u16,
                ipb: 10,
            });
        }
        // Re-walk traverse twice more: enough to overflow a small window
        // and create migration points inside the op.
        for _ in 0..2 {
            events.push(TraceEvent::Instr {
                block: map.base(Routine::BtreeTraverse),
                n_blocks: map.n_blocks(Routine::BtreeTraverse) as u16,
                ipb: 10,
            });
        }
        events.push(TraceEvent::OpEnd { op: OpKind::Probe });
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XT,
            events,
        }
    }

    #[test]
    fn report_attributes_footprint_to_slots() {
        let traces: Vec<XctTrace> = (0..4).map(|_| trace()).collect();
        let l1i = CacheGeometry::new(256 * 64, 8); // 256-block window
        let map = find_migration_points(&traces, l1i);
        let plan = AssignmentPlan::build(&map, PlanConfig::new(8));
        let report = specialization_report(&traces, &plan);
        assert!(!report.is_empty());
        // Roles are meaningful and footprints positive.
        let roles: Vec<&str> = report.iter().map(|s| s.role.as_str()).collect();
        assert!(roles.contains(&"transaction entry"));
        assert!(roles.iter().any(|r| r.starts_with("probe")));
        for s in &report {
            assert!(s.footprint_blocks > 0);
            assert!(s.instructions > 0);
            assert!(!s.routines.is_empty());
        }
        // Total instructions attributed = total trace instructions.
        let total: u64 = report.iter().map(|s| s.instructions).sum();
        let expected: u64 = traces.iter().map(XctTrace::instructions).sum();
        assert_eq!(total, expected);
        // Every profiled action fits the L1-I window the plan was built
        // for, modulo the window's own capacity (the entry action holds
        // whatever precedes the first point).
        for s in &report {
            if s.role.contains("point") {
                assert!(
                    s.fits_l1i(2 * 256),
                    "{}: {} blocks is far beyond the window",
                    s.role,
                    s.footprint_blocks
                );
            }
        }
    }

    #[test]
    fn fallback_types_are_skipped() {
        let traces: Vec<XctTrace> = (0..2).map(|_| trace()).collect();
        let l1i = CacheGeometry::new(256 * 64, 8);
        let map = find_migration_points(&traces, l1i);
        // One core: the plan falls back; nothing to specialize.
        let plan = AssignmentPlan::build(&map, PlanConfig::new(1));
        assert!(specialization_report(&traces, &plan).is_empty());
    }
}
