//! # addict-core
//!
//! ADDICT itself — the paper's contribution — plus the three comparator
//! scheduling mechanisms, all running over the `addict-sim` machine on
//! traces produced by `addict-storage`/`addict-workloads`.
//!
//! * [`algorithm1`] — **Step 1**: find per-(transaction type, operation)
//!   *migration points* by tracking where an L1-I-sized window overflows
//!   (Algorithm 1 of the paper), and measure their stability (Figure 4).
//! * [`plan`] — **Step 2, lines 1–14**: assign cores to transaction
//!   entries, operation entries, and migration points, including the
//!   Section 3.2.3 load balancing (dropping points of infrequent
//!   operations when cores are scarce; frequency-proportional replication
//!   when cores are plentiful).
//! * [`replay`] — the trace-replay substrate: a discrete-event cluster
//!   where threads occupy cores, queue, migrate, and execute their traced
//!   events against the simulated memory hierarchy.
//! * [`sched`] — the four mechanisms of Section 4.1: Baseline (one core
//!   per transaction, start to finish), STREX (time-multiplexing a batch
//!   on one core), SLICC (hardware-heuristic computation spreading), and
//!   ADDICT (software-guided migration at the planned points).
//! * [`specialize`] — the Section 6 outlook: per-action instruction
//!   profiles for heterogeneous-core specialization.

pub mod algorithm1;
pub mod plan;
pub mod replay;
pub mod sched;
mod shard;
pub mod specialize;

pub use algorithm1::{
    find_migration_points, find_migration_points_interned, MigrationMap, Profiler,
};
pub use plan::{AssignmentPlan, PlanConfig};
pub use replay::{ReplayConfig, ReplayResult};
pub use sched::{run_scheduler, SchedulerKind};
