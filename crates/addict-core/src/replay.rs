//! Trace replay: a discrete-event cluster where threads (transactions)
//! occupy cores, queue, yield, migrate, and execute their traced memory
//! events against the `addict-sim` machine.
//!
//! The replay engine is policy-parameterized: a [`Policy`] decides, per
//! event, whether a thread keeps running on its core, yields the core
//! (STREX-style time multiplexing), or migrates to another core
//! (SLICC / ADDICT). Everything else — per-core clocks, FIFO run queues,
//! latency bookkeeping, machine accounting — is shared by every scheduler,
//! so measured differences come from scheduling decisions alone.
//!
//! The engine is also storage-layout-parameterized: it walks traces
//! through [`TraceSet`], so flat `[XctTrace]` vectors and the interned
//! arena-backed form ([`InternedSet`](addict_trace::InternedSet)) replay
//! through the *identical* loop — one `fetch` per step (event plus run
//! geometry in a single trace read), whole instruction runs executed
//! segment-granularly inside the machine, and consecutive data accesses
//! executed run-granularly ([`Policy::data_run_granular`]). Layout changes
//! memory traffic, never a simulated bit.

use std::collections::VecDeque;

use addict_sim::{
    BlockAddr, CoreId, Machine, MachineStats, PowerModel, PowerReport, SimConfig, SpecStats,
};
use addict_trace::event::FlatEvent;
use addict_trace::set::{DataRun, Fetched, TraceSet};
use addict_trace::XctTypeId;
use serde::{Deserialize, Serialize};

/// Parameters of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The simulated machine.
    pub sim: SimConfig,
    /// Batch size for the batching schedulers (paper default: #cores).
    pub batch_size: usize,
    /// STREX: L1-I misses a thread absorbs before yielding the core.
    pub strex_miss_threshold: u64,
    /// SLICC: L1-I misses since arriving on a core before the thread
    /// considers its working set resident elsewhere and migrates.
    pub slicc_fill_threshold: u64,
    /// Power model for the Figure 8(b) report.
    pub power: PowerModel,
    /// Execute instruction runs segment-granularly (the allocation-free
    /// fast path) when the policy allows it. Produces bit-identical results
    /// to the per-block path; `false` forces per-block execution (kept for
    /// the equivalence tests and the hot-path benchmarks).
    pub segment_exec: bool,
    /// Execute consecutive data accesses run-granularly when the policy
    /// allows it ([`Policy::data_run_granular`]): whole data runs execute
    /// inside the machine, private leading hits consumed without touching
    /// the coherence directory. Produces bit-identical results to the
    /// per-block path; `false` forces per-event data execution (kept for
    /// the equivalence tests and the hot-path benchmarks).
    pub data_run_exec: bool,
    /// Worker threads one replay's trace decoding is sharded across
    /// (1 = the serial engine). Cores partition into contiguous shard
    /// ranges the way blocks partition into LLC banks; each shard's
    /// worker advances its threads' cursors independently up to a
    /// conservative decode-ahead horizon, and the merge layer serializes
    /// every machine effect in exactly the [`Cluster::earliest_of`] total
    /// order (penalty, then lowest core id) — so N-shard replays
    /// serialize **byte-identical** [`ReplayResult`]s to 1-shard runs.
    /// Clamped to the core count.
    pub shards: usize,
}

impl ReplayConfig {
    /// Paper-default replay on the Table 1 machine.
    pub fn paper_default() -> Self {
        let sim = SimConfig::paper_default();
        ReplayConfig {
            batch_size: sim.n_cores,
            sim,
            strex_miss_threshold: 64,
            slicc_fill_threshold: 48,
            power: PowerModel::default(),
            segment_exec: true,
            data_run_exec: true,
            shards: 1,
        }
    }

    /// Same configuration with a different batch size (Section 4.5).
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b.max(1);
        self
    }

    /// Same configuration sharded across `s` worker threads.
    pub fn with_shards(mut self, s: usize) -> Self {
        self.shards = s.max(1);
        self
    }
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

// Thread-safety audit: the parallel sweep engine (addict-bench) shares
// replay configs and trace slices across worker threads by reference and
// sends results back to the collecting thread. These types hold plain
// owned data — keep them that way, or sweeps stop compiling here first.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<ReplayConfig>();
    shared::<ReplayResult>();
    shared::<Action>();
    shared::<Admission>();
    shared::<Cluster>();
    shared::<addict_trace::XctTrace>();
    shared::<crate::algorithm1::MigrationMap>();
};

/// The outcome of replaying one workload under one scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Scheduler name.
    pub scheduler: String,
    /// Transactions replayed.
    pub n_xcts: usize,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Makespan: cycles to complete all traces (Figure 6, left).
    pub total_cycles: f64,
    /// Mean per-transaction latency in cycles (Figure 6, right).
    pub avg_latency_cycles: f64,
    /// Machine counters (MPKIs for Figure 5, switches for Figure 9).
    pub stats: MachineStats,
    /// Power accounting (Figure 8(b)).
    pub power: PowerReport,
    /// Per-transaction latency in cycles, indexed by trace id (start to
    /// finish, queueing included).
    pub latencies: Vec<f64>,
    /// Speculation counters (HTMX; all-zero for the non-speculative
    /// schedulers — speculation-free replays report a zeroed block rather
    /// than an absent one so every result serializes with one shape).
    pub spec: SpecStats,
}

impl ReplayResult {
    /// Migration/context-switch overhead share of total cycles (Figure 9,
    /// right). Overhead cycles accumulate across cores, so normalize by
    /// aggregate busy time (makespan x cores).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total_cycles * self.stats.cores.len() as f64;
        if total == 0.0 {
            0.0
        } else {
            self.stats.overhead_cycles() / total
        }
    }
}

/// What a policy tells the engine to do with the pending event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Execute the event here.
    Continue,
    /// Put the thread at the back of this core's queue (context switch)
    /// and run the next queued thread.
    Yield,
    /// Move the thread to the given core's queue.
    MigrateTo(usize),
    /// Charge the thread a policy-decided stall of this many cycles, then
    /// proceed as [`Action::Continue`] (in `pre`, the event still
    /// executes). HTMX charges speculation begin/commit/abort costs,
    /// backoff, and discarded work this way; the cycles are accounted as
    /// overhead ([`Machine::stall`]).
    Stall(f64),
}

/// Scheduling policy: consulted before (`pre`) and after (`post`) each
/// event. `pre` migrations leave the event unconsumed (it executes at the
/// destination — how ADDICT gets the migration-point block fetched on its
/// assigned core); `post` decisions run after the event completed (how
/// miss-driven heuristics react).
pub trait Policy {
    /// Decide before executing `ev` on `core`.
    fn pre(
        &mut self,
        _tid: usize,
        _ev: FlatEvent,
        _core: usize,
        _machine: &Machine,
        _cluster: &Cluster,
        _now: f64,
    ) -> Action {
        Action::Continue
    }

    /// Observe the executed event; `missed` reports an L1-I miss for
    /// instruction events.
    fn post(
        &mut self,
        _tid: usize,
        _ev: FlatEvent,
        _core: usize,
        _missed: bool,
        _machine: &Machine,
        _cluster: &Cluster,
        _now: f64,
    ) -> Action {
        Action::Continue
    }

    /// Reset per-thread state after a migration or yield completed.
    fn on_moved(&mut self, _tid: usize, _to_core: usize) {}

    /// Opt into segment-granular execution (the allocation-free fast path).
    ///
    /// A policy returning `true` promises that, for **instruction events
    /// that hit in the L1-I**, its `pre` and `post` both return
    /// [`Action::Continue`] and mutate no state — *except* at the single
    /// block address reported by [`Policy::watch_addr`], where `pre` is
    /// still consulted per-block. Under that contract the engine executes
    /// whole instruction runs inside the machine, consulting the policy
    /// only at watched blocks and on misses, and the replay is
    /// bit-identical to per-block execution. Policies that react to
    /// arbitrary instruction hits must keep the default `false`.
    fn segment_granular(&self) -> bool {
        false
    }

    /// The next instruction block at which `pre` must be consulted even if
    /// the fetch would hit (ADDICT's pending migration point). `None`
    /// means `pre` never acts on hits for this thread right now, so runs
    /// execute at full speed.
    fn watch_addr(&self, _tid: usize) -> Option<BlockAddr> {
        None
    }

    /// Opt into run-granular data execution (the data-side counterpart of
    /// [`Policy::segment_granular`]).
    ///
    /// A policy returning `true` promises that, for **every data event**
    /// (hit or miss, load or store), its `pre` and `post` both return
    /// [`Action::Continue`] and mutate no state. Under that contract the
    /// engine gathers each run of consecutive data events and executes it
    /// whole inside the machine — private leading hits in the directory-
    /// silent fast lane, conflicting/missing blocks through the ordinary
    /// coherent path — never consulting the policy, and the replay is
    /// bit-identical to per-event execution. Policies that react to data
    /// events must keep the default `false`.
    fn data_run_granular(&self) -> bool {
        false
    }

    /// Does `post` react to instruction *misses*? Miss-driven policies
    /// (STREX, SLICC) must keep the default `true` so the segment engine
    /// stops at every miss; policies indifferent to misses (Baseline,
    /// ADDICT — whose `post` only acts on markers) return `false`, letting
    /// the machine execute entire runs, miss servicing included, without
    /// ever leaving its fast loop. Only consulted when
    /// [`Policy::segment_granular`] is `true`.
    fn observes_misses(&self) -> bool {
        true
    }
}

/// Per-core clocks and FIFO run queues.
#[derive(Debug)]
pub struct Cluster {
    /// Cycle at which each core finishes its current work.
    pub free_at: Vec<f64>,
    /// Queued thread ids per core.
    pub queues: Vec<VecDeque<usize>>,
    /// Cores currently executing a segment (their `free_at` is stale
    /// until the segment retires).
    pub busy: Vec<bool>,
}

impl Cluster {
    /// An idle cluster of `n` cores.
    pub fn new(n: usize) -> Self {
        Cluster {
            free_at: vec![0.0; n],
            queues: vec![VecDeque::new(); n],
            busy: vec![false; n],
        }
    }

    /// Is `core` idle right now (not mid-segment, no queue, not busy past
    /// `now`)?
    pub fn is_idle(&self, core: usize, now: f64) -> bool {
        !self.busy[core] && self.queues[core].is_empty() && self.free_at[core] <= now
    }

    /// The core among `candidates` that can start work soonest. Ties break
    /// to the lowest core id. (Bare `min_by` keeps the *first* minimum, so
    /// the winner would depend on the order the caller listed candidates
    /// in — e.g. ADDICT chains warm cores before planned cores. The
    /// explicit tie-break makes the choice a property of the cluster
    /// state alone.)
    pub fn earliest_of(&self, candidates: &[usize]) -> usize {
        let penalty = |c: usize| {
            self.free_at[c]
                + 1e4 * self.queues[c].len() as f64
                + if self.busy[c] { 1e4 } else { 0.0 }
        };
        *candidates
            .iter()
            .min_by(|&&a, &&b| {
                penalty(a)
                    .partial_cmp(&penalty(b))
                    .expect("clocks are finite")
                    .then(a.cmp(&b))
            })
            .expect("non-empty candidate list")
    }
}

#[derive(Debug)]
struct Thread<C> {
    cursor: C,
    ready_at: f64,
    started_at: Option<f64>,
    finished_at: Option<f64>,
}

/// Group trace indexes into same-type batches of `batch_size`, preserving
/// request order (Algorithm 2 line 16-17). Returns the dispatch order.
pub fn batch_order<T: TraceSet + ?Sized>(traces: &T, batch_size: usize) -> Vec<Vec<usize>> {
    let mut pending: Vec<(XctTypeId, Vec<usize>)> = Vec::new();
    let mut batches = Vec::new();
    for i in 0..traces.len() {
        let ty = traces.xct_type(i);
        let entry = match pending.iter_mut().find(|(t, _)| *t == ty) {
            Some(e) => e,
            None => {
                pending.push((ty, Vec::new()));
                pending.last_mut().expect("just pushed")
            }
        };
        entry.1.push(i);
        if entry.1.len() == batch_size {
            batches.push(std::mem::take(&mut entry.1));
        }
    }
    // Flush partial batches in type order of first appearance.
    for (_, rest) in pending {
        if !rest.is_empty() {
            batches.push(rest);
        }
    }
    batches
}

/// Run the discrete-event replay.
///
/// `placement(dispatch_index, xct_type)` gives each thread its initial
/// core; threads are enqueued in `order`. The policy steers everything
/// after that. Generic over the trace storage layout ([`TraceSet`]): the
/// flat and interned forms replay through the identical engine, so they
/// are bit-identical by construction.
pub fn run_des<T: TraceSet + Sync + ?Sized, P: Policy>(
    machine: &mut Machine,
    traces: &T,
    order: &[usize],
    placement: impl Fn(usize, XctTypeId) -> usize,
    policy: &mut P,
    scheduler_name: &str,
    cfg: &ReplayConfig,
) -> ReplayResult {
    run_des_admitted(
        machine,
        traces,
        order,
        placement,
        policy,
        scheduler_name,
        cfg,
        Admission::All,
    )
}

/// Admission policy for [`run_des_admitted`].
#[derive(Debug, Clone)]
pub enum Admission {
    /// Everything dispatches immediately (Baseline, STREX).
    All,
    /// At most this many transactions in flight.
    Bounded(usize),
    /// At most `inflight` transactions in flight AND batches drain before
    /// the next batch enters (ADDICT/SLICC batch semantics; `batch_of`
    /// maps dispatch index to batch id).
    BatchSerial {
        /// In-flight bound (the batch size).
        inflight: usize,
        /// Batch id per dispatch index.
        batch_of: Vec<usize>,
    },
}

/// [`run_des`] with an in-flight bound: at most `max_inflight` transactions
/// are admitted at once (Section 3.2.5: ADDICT "does not batch more
/// transactions than the number of available cores in the system, [so] it
/// does not change the data contention patterns"). `None` admits everything
/// immediately (Baseline dispatch, STREX's overloaded cores).
#[allow(clippy::too_many_arguments)]
pub fn run_des_admitted<T: TraceSet + Sync + ?Sized, P: Policy>(
    machine: &mut Machine,
    traces: &T,
    order: &[usize],
    placement: impl Fn(usize, XctTypeId) -> usize,
    policy: &mut P,
    scheduler_name: &str,
    cfg: &ReplayConfig,
    admission: Admission,
) -> ReplayResult {
    // Admission queue: (tid, initial core, batch id) in dispatch order.
    let pending: VecDeque<(usize, usize, usize)> = order
        .iter()
        .enumerate()
        .map(|(dispatch_idx, &tid)| {
            let batch = match &admission {
                Admission::BatchSerial { batch_of, .. } => batch_of[dispatch_idx],
                _ => 0,
            };
            (tid, placement(dispatch_idx, traces.xct_type(tid)), batch)
        })
        .collect();

    let shards = cfg.shards.clamp(1, machine.n_cores().max(1));
    if shards > 1 && !pending.is_empty() {
        crate::shard::run_sharded(
            machine,
            traces,
            pending,
            policy,
            scheduler_name,
            cfg,
            &admission,
            shards,
        )
    } else {
        des_loop(
            machine,
            traces,
            pending,
            policy,
            scheduler_name,
            cfg,
            &admission,
        )
    }
}

/// The serial discrete-event loop over a pre-built admission queue: one
/// [`TraceSet::fetch`] per step, machine effects applied in exactly the
/// [`Cluster::earliest_of`] total order. Sharded replays run this same
/// loop over a [`crate::shard::ShardedView`] — that is the whole
/// byte-identity argument: only the trace *decoding* moves off-thread,
/// never the merge.
#[allow(clippy::too_many_arguments)]
pub(crate) fn des_loop<T: TraceSet + ?Sized, P: Policy>(
    machine: &mut Machine,
    traces: &T,
    mut pending: VecDeque<(usize, usize, usize)>,
    policy: &mut P,
    scheduler_name: &str,
    cfg: &ReplayConfig,
    admission: &Admission,
) -> ReplayResult {
    let n_cores = machine.n_cores();
    let mut cluster = Cluster::new(n_cores);
    let mut threads: Vec<Thread<T::Cursor>> = (0..traces.len())
        .map(|_| Thread {
            cursor: T::Cursor::default(),
            ready_at: 0.0,
            started_at: None,
            finished_at: None,
        })
        .collect();
    let mut inflight = 0usize;
    let mut inflight_batch = 0usize; // id of the oldest in-flight batch
    let mut inflight_of_batch = 0usize;
    // Cached earliest-start per core: `free_at[c].max(ready_at[head_c])`,
    // `INFINITY` for an empty queue. The pick below is the hottest read in
    // the whole engine — once per segment — and recomputing it from the
    // queue heads touches 16 scattered `threads[tid]` entries, which fall
    // out of the host cache as soon as the workload outgrows a few hundred
    // traces (the STREX scaling falloff: an Admission::All scheduler keeps
    // every queue non-empty, so each of its ~0.6-switches-per-ki picks
    // paid 16 cold loads into a 10k-thread array). Every queue/clock
    // mutation refreshes the 1-2 cores it touched; the cached value is
    // always exactly the recomputed one, so the pick — same values, same
    // scan order, same strict-< tie-break — is bit-identical to the
    // uncached scan.
    let mut head_start: Vec<f64> = vec![f64::INFINITY; n_cores];
    let admit = |pending: &mut VecDeque<(usize, usize, usize)>,
                 cluster: &mut Cluster,
                 head_start: &mut [f64],
                 threads: &[Thread<T::Cursor>],
                 inflight: &mut usize,
                 inflight_batch: &mut usize,
                 inflight_of_batch: &mut usize| {
        loop {
            let Some(&(tid, core, batch)) = pending.front() else {
                return;
            };
            let admit_ok = match admission {
                Admission::All => true,
                Admission::Bounded(max) => *inflight < (*max).max(1),
                Admission::BatchSerial { inflight: max, .. } => {
                    // Batches run one after another: a new batch may
                    // only trickle in once the previous one is nearly
                    // drained, so two types' actions do not thrash
                    // each other's cores mid-batch.
                    *inflight < (*max).max(1)
                        && (batch == *inflight_batch || *inflight_of_batch * 4 <= (*max).max(1))
                }
            };
            if !admit_ok {
                return;
            }
            pending.pop_front();
            if batch != *inflight_batch {
                *inflight_batch = batch;
                *inflight_of_batch = 0;
            }
            *inflight += 1;
            *inflight_of_batch += 1;
            cluster.queues[core].push_back(tid);
            if cluster.queues[core].len() == 1 {
                head_start[core] = cluster.free_at[core].max(threads[tid].ready_at);
            }
        }
    };
    admit(
        &mut pending,
        &mut cluster,
        &mut head_start,
        &threads,
        &mut inflight,
        &mut inflight_batch,
        &mut inflight_of_batch,
    );

    let use_segment = cfg.segment_exec && policy.segment_granular();
    let stop_on_miss = policy.observes_misses();
    let use_data_runs = cfg.data_run_exec && policy.data_run_granular();
    // One run buffer for the whole replay: gather grows it to the longest
    // data run once, after which the hot loop is allocation-free.
    let mut data_run = DataRun::new();

    loop {
        // Pick the runnable queue head that can start earliest (the cached
        // per-core starts; finite = non-empty queue).
        let mut best: Option<(usize, f64)> = None;
        for (core, &start) in head_start.iter().enumerate() {
            if start.is_finite() && best.is_none_or(|(_, b)| start < b) {
                best = Some((core, start));
            }
        }
        let Some((core, start)) = best else { break };
        let tid = cluster.queues[core].pop_front().expect("non-empty queue");
        // Warm the next queued trace's storage while this segment replays.
        // At scale the resident set outgrows L2, and yield-heavy admission
        // (STREX rotates every ready trace) resumes a cold trace each
        // pick; a pure prefetch hint hides that chain without touching
        // any observable state, so bit-identity holds by construction.
        if let Some(&next) = cluster.queues[core].front() {
            traces.prefetch(next);
        }
        cluster.busy[core] = true;
        // Cores whose queue or clock this iteration touches; their cached
        // starts refresh at the bottom of the loop.
        let mut moved_to: Option<usize> = None;

        let mut now = start;
        threads[tid].started_at.get_or_insert(now);

        // Apply a policy [`Action`]: `Continue` (or a same-core migrate)
        // keeps the thread running and returns false; `Yield`/`MigrateTo`
        // charge the switch, requeue the thread, and return true so the
        // segment ends. One shared implementation for every consultation
        // site — segment-granular and per-block execution must never drift.
        macro_rules! apply_action {
            ($action:expr) => {
                match $action {
                    Action::Continue => false,
                    Action::Yield => {
                        let cost = machine.context_switch(CoreId(core));
                        now += cost;
                        threads[tid].ready_at = now;
                        cluster.queues[core].push_back(tid);
                        policy.on_moved(tid, core);
                        true
                    }
                    Action::MigrateTo(dest) if dest != core => {
                        let cost = machine.migrate(CoreId(core), CoreId(dest));
                        threads[tid].ready_at = now + cost;
                        cluster.queues[dest].push_back(tid);
                        moved_to = Some(dest);
                        policy.on_moved(tid, dest);
                        true
                    }
                    Action::MigrateTo(_) => false,
                    Action::Stall(cycles) => {
                        now += machine.stall(CoreId(core), cycles);
                        false
                    }
                }
            };
        }

        // Execute the segment. Exactly one [`TraceSet::fetch`] per step:
        // the fetch yields both the event and the run geometry needed to
        // advance, so the cursor never re-reads the trace (the old cursor
        // matched `events[idx]` up to three times per step).
        loop {
            let fetched = traces.fetch(tid, threads[tid].cursor);

            // Segment-granular fast path: when the policy upholds the
            // [`Policy::segment_granular`] contract, whole instruction runs
            // execute inside the machine with the policy consulted only at
            // watched blocks (split out of the run below) and on L1-I
            // misses. Bit-identical to the per-block path.
            if use_segment {
                if let Fetched::Run {
                    block: seg_start,
                    rem,
                    ipb,
                } = fetched
                {
                    let mut limit = rem;
                    if let Some(w) = policy.watch_addr(tid) {
                        if w.0 >= seg_start.0 && w.0 < seg_start.0 + u64::from(rem) {
                            // Execute up to (not including) the watched
                            // block; the per-block path below consults
                            // `pre` for it on the next iteration.
                            limit = (w.0 - seg_start.0) as u16;
                        }
                    }
                    if limit > 0 {
                        let out = machine.fetch_instr_run(
                            CoreId(core),
                            seg_start,
                            limit,
                            ipb,
                            now,
                            stop_on_miss,
                        );
                        now = out.now;
                        traces.advance_run(tid, &mut threads[tid].cursor, rem, out.blocks);
                        if out.missed_last {
                            let ev = FlatEvent::Instr {
                                block: BlockAddr(seg_start.0 + u64::from(out.blocks) - 1),
                                n_instr: ipb,
                            };
                            let action = policy.post(tid, ev, core, true, machine, &cluster, now);
                            if apply_action!(action) {
                                break;
                            }
                        }
                        continue;
                    }
                }
            }

            // Data-run fast path: when the policy upholds the
            // [`Policy::data_run_granular`] contract (pre/post are pure
            // `Continue` for data events), the whole run of consecutive
            // data events executes inside the machine — the gather is the
            // lazily-computed data-run view, the machine consumes private
            // leading hits without a directory transaction and routes the
            // first shared/upgraded/missing block through the ordinary
            // coherent path. Bit-identical to the per-event path.
            if use_data_runs {
                if let Fetched::Event(FlatEvent::Data { .. }) = fetched {
                    let n = traces.gather_data_run(tid, threads[tid].cursor, &mut data_run);
                    debug_assert!(n >= 1, "cursor stands at a data event");
                    now = machine.access_data_run(CoreId(core), data_run.accesses(), now);
                    traces.advance_data_run(tid, &mut threads[tid].cursor, n);
                    continue;
                }
            }

            // Per-block path: instruction runs execute one block per step
            // (`run_rem > 0` marks an in-run step; the run advances by one
            // block without re-fetching the trace).
            let (ev, run_rem) = match fetched {
                Fetched::End => {
                    threads[tid].finished_at = Some(now);
                    // A slot freed: admit whatever is allowed next.
                    inflight = inflight.saturating_sub(1);
                    inflight_of_batch = inflight_of_batch.saturating_sub(1);
                    admit(
                        &mut pending,
                        &mut cluster,
                        &mut head_start,
                        &threads,
                        &mut inflight,
                        &mut inflight_batch,
                        &mut inflight_of_batch,
                    );
                    break;
                }
                Fetched::Run { block, rem, ipb } => (
                    FlatEvent::Instr {
                        block,
                        n_instr: ipb,
                    },
                    rem,
                ),
                Fetched::Event(ev) => (ev, 0),
            };
            let pre_action = policy.pre(tid, ev, core, machine, &cluster, now);
            if let Action::MigrateTo(dest) = pre_action {
                debug_assert_ne!(dest, core, "pre-migration to the same core");
            }
            if apply_action!(pre_action) {
                // A pre-move leaves the event unconsumed: it executes at
                // the destination.
                break;
            }

            // Execute the event.
            let miss_before = machine.stats().cores[core].l1i_misses;
            let cycles = match ev {
                FlatEvent::Instr { block, n_instr } => {
                    machine.fetch_instr(CoreId(core), block, u64::from(n_instr))
                }
                FlatEvent::Data { block, write } => machine.access_data(CoreId(core), block, write),
                _ => 0.0,
            };
            now += cycles;
            if run_rem > 0 {
                traces.advance_run(tid, &mut threads[tid].cursor, run_rem, 1);
            } else {
                traces.advance_event(tid, &mut threads[tid].cursor, ev);
            }
            let missed = machine.stats().cores[core].l1i_misses > miss_before;

            let post_action = policy.post(tid, ev, core, missed, machine, &cluster, now);
            if apply_action!(post_action) {
                break;
            }
        }
        cluster.busy[core] = false;
        cluster.free_at[core] = cluster.free_at[core].max(now);
        // Refresh the cached starts of the touched cores: the executed
        // core (popped head, possibly a yield re-queue, clock advanced)
        // and a migration destination, if any. Admission refreshed its
        // own pushes inside `admit`.
        for c in std::iter::once(core).chain(moved_to) {
            head_start[c] = match cluster.queues[c].front() {
                Some(&t) => cluster.free_at[c].max(threads[t].ready_at),
                None => f64::INFINITY,
            };
        }
    }

    let total_cycles = cluster.free_at.iter().copied().fold(0.0f64, f64::max);
    let latencies: Vec<f64> = threads
        .iter()
        .map(|t| {
            t.finished_at.expect("all threads finish") - t.started_at.expect("all threads start")
        })
        .collect();
    let avg_latency_cycles = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let stats = machine.stats().clone();
    let power = cfg.power.report(&stats, total_cycles, machine.config());
    ReplayResult {
        scheduler: scheduler_name.to_owned(),
        n_xcts: traces.len(),
        instructions: stats.instructions(),
        total_cycles,
        avg_latency_cycles,
        stats,
        power,
        latencies,
        // Speculative schedulers overwrite this with their accumulated
        // counters after the run (the policy owns the speculation state).
        spec: SpecStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_sim::BlockAddr;
    use addict_trace::{TraceEvent, XctTrace};

    fn mini_trace(ty: u16, base: u64) -> XctTrace {
        XctTrace {
            xct_type: XctTypeId(ty),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(ty),
                },
                TraceEvent::Instr {
                    block: BlockAddr(base),
                    n_blocks: 4,
                    ipb: 10,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9000 + base),
                    write: false,
                },
                TraceEvent::XctEnd,
            ],
        }
    }

    struct NoopPolicy;
    impl Policy for NoopPolicy {}

    #[test]
    fn des_executes_all_events_and_reports() {
        let traces: Vec<XctTrace> = (0..8).map(|i| mini_trace(0, i * 100)).collect();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(4),
            ..Default::default()
        };
        let mut machine = Machine::new(&cfg.sim);
        let order: Vec<usize> = (0..traces.len()).collect();
        let result = run_des(
            &mut machine,
            &traces,
            &order,
            |i, _| i % 4,
            &mut NoopPolicy,
            "test",
            &cfg,
        );
        assert_eq!(result.n_xcts, 8);
        // 8 traces x 4 blocks x 10 instructions.
        assert_eq!(result.instructions, 320);
        assert!(result.total_cycles > 0.0);
        assert!(result.avg_latency_cycles > 0.0);
        // Round-robin over 4 cores: makespan ~ 2 threads per core; latency
        // of each thread is at most the makespan.
        assert!(result.avg_latency_cycles <= result.total_cycles);
        assert_eq!(result.stats.migrations_in(), 0);
    }

    #[test]
    fn cursor_expands_runs_in_order() {
        let traces = vec![mini_trace(0, 0x40)];
        let blocks: Vec<u64> = addict_trace::set::flat_events_of(&traces, 0)
            .into_iter()
            .filter_map(|ev| match ev {
                FlatEvent::Instr { block, .. } => Some(block.0),
                _ => None,
            })
            .collect();
        assert_eq!(blocks, vec![0x40, 0x41, 0x42, 0x43]);
    }

    #[test]
    fn batch_order_groups_same_type() {
        let traces: Vec<XctTrace> = [0u16, 1, 0, 0, 1, 0, 1, 1, 0]
            .iter()
            .map(|&ty| mini_trace(ty, 0))
            .collect();
        let batches = batch_order(&traces, 3);
        // Type 0 at indexes 0,2,3 completes a batch first, then type 1 at
        // 1,4,6; the leftovers flush at the end.
        assert_eq!(batches[0], vec![0, 2, 3]);
        assert_eq!(batches[1], vec![1, 4, 6]);
        // Every index appears exactly once.
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        // Batches after the first two are the partial remainders.
        for b in &batches[2..] {
            let ty = traces[b[0]].xct_type;
            assert!(b.iter().all(|&i| traces[i].xct_type == ty));
        }
    }

    #[test]
    fn earliest_of_ties_break_to_lowest_core_id() {
        // Regression guard for the deterministic tie-break (PR 1): the
        // winner is a property of cluster state alone, independent of the
        // order the caller lists candidates in. The parallel sweep engine
        // relies on this for bit-identical 1-vs-N-thread results.
        let c = Cluster::new(4);
        assert_eq!(c.earliest_of(&[3, 1, 2]), 1);
        assert_eq!(c.earliest_of(&[2, 3, 1]), 1);
        assert_eq!(c.earliest_of(&[1, 2, 3]), 1);
        assert_eq!(c.earliest_of(&[0, 3]), 0);

        // A later clock loses even to a higher core id...
        let mut c = Cluster::new(4);
        c.free_at[1] = 10.0;
        assert_eq!(c.earliest_of(&[3, 1]), 3);
        // ...and queue depth and mid-segment busyness are penalized.
        let mut c = Cluster::new(4);
        c.queues[0].push_back(7);
        assert_eq!(c.earliest_of(&[0, 2]), 2);
        let mut c = Cluster::new(4);
        c.busy[2] = true;
        assert_eq!(c.earliest_of(&[2, 3]), 3);
        // Equal non-zero penalties still break to the lowest id.
        let mut c = Cluster::new(4);
        c.free_at[2] = 5.0;
        c.free_at[1] = 5.0;
        assert_eq!(c.earliest_of(&[2, 1]), 1);
    }

    struct YieldOncePolicy {
        yielded: Vec<bool>,
    }
    impl Policy for YieldOncePolicy {
        fn post(
            &mut self,
            tid: usize,
            ev: FlatEvent,
            _core: usize,
            _missed: bool,
            _machine: &Machine,
            _cluster: &Cluster,
            _now: f64,
        ) -> Action {
            if !self.yielded[tid] && matches!(ev, FlatEvent::Instr { .. }) {
                self.yielded[tid] = true;
                Action::Yield
            } else {
                Action::Continue
            }
        }
    }

    #[test]
    fn yield_time_multiplexes_one_core() {
        let traces: Vec<XctTrace> = (0..3).map(|i| mini_trace(0, i * 100)).collect();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(2),
            ..Default::default()
        };
        let mut machine = Machine::new(&cfg.sim);
        let order: Vec<usize> = (0..3).collect();
        let mut policy = YieldOncePolicy {
            yielded: vec![false; 3],
        };
        let result = run_des(
            &mut machine,
            &traces,
            &order,
            |_, _| 0,
            &mut policy,
            "yield",
            &cfg,
        );
        // All three threads shared core 0; each yielded once.
        assert_eq!(result.stats.context_switches(), 3);
        assert_eq!(result.stats.cores[0].context_switches, 3);
        assert!(result.stats.cores[1].instructions == 0);
    }

    struct MigrateOncePolicy {
        moved: Vec<bool>,
    }
    impl Policy for MigrateOncePolicy {
        fn post(
            &mut self,
            tid: usize,
            ev: FlatEvent,
            core: usize,
            _missed: bool,
            _machine: &Machine,
            _cluster: &Cluster,
            _now: f64,
        ) -> Action {
            if !self.moved[tid] && matches!(ev, FlatEvent::Instr { .. }) {
                self.moved[tid] = true;
                Action::MigrateTo(core + 1)
            } else {
                Action::Continue
            }
        }
    }

    #[test]
    fn migration_moves_work_and_counts() {
        let traces = vec![mini_trace(0, 0)];
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(2),
            ..Default::default()
        };
        let mut machine = Machine::new(&cfg.sim);
        let mut policy = MigrateOncePolicy { moved: vec![false] };
        let result = run_des(
            &mut machine,
            &traces,
            &[0],
            |_, _| 0,
            &mut policy,
            "mig",
            &cfg,
        );
        assert_eq!(result.stats.migrations_in(), 1);
        assert_eq!(result.stats.cores[1].migrations_in, 1);
        // Both cores executed instructions.
        assert!(result.stats.cores[0].instructions > 0);
        assert!(result.stats.cores[1].instructions > 0);
        assert!(result.overhead_fraction() > 0.0);
    }
}
