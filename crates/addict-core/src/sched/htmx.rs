//! HTMX: bounded speculative (HTM-style) transaction execution over the
//! MESI directory (beyond the paper; ROADMAP "HTM-style speculative
//! scheduler family", after the bounded read/write-set HTM of PAPERS.md
//! arxiv 2510.15888).
//!
//! Placement is Baseline's — one core per transaction, no movement — but
//! every transaction runs inside a bounded speculative region: the
//! [`Speculation`] subsystem tracks its read/write sets as fixed-width
//! bitmask windows, and conflicts are detected by peeking the
//! [`CoherenceAction`](addict_sim::CoherenceAction) each data access is
//! about to produce on the directory and dooming the windows of its
//! victims. An aborted region retries with linear backoff up to
//! [`SpecConfig::max_retries`] times, then completes on a non-speculative
//! fallback path.
//!
//! Trace replay cannot rewind, so aborts are modeled in **time**: the
//! replay continues forward as the retry, and the abort charges the
//! cycles the dead attempt had accumulated (the discarded work), the
//! abort cost, and the backoff as a policy stall ([`Action::Stall`]).
//! Window contents of the aborted prefix are *not* re-tracked by the
//! retry — the retry's window starts at the abort point — a deliberate
//! approximation that keeps the replay single-pass while still charging
//! every discarded cycle.
//!
//! The policy acts only on `XctBegin` / `XctEnd` / `Data` events and
//! never on instruction fetches, so it upholds the
//! [`Policy::segment_granular`] contract trivially (instruction runs
//! execute at full speed inside the machine); it must keep
//! [`Policy::data_run_granular`] off because every data event feeds the
//! conflict oracle.

use addict_sim::{AbortCause, Machine, SpecConfig, Speculation};
use addict_trace::event::FlatEvent;
use addict_trace::TraceSet;

use crate::replay::{run_des, Action, Cluster, Policy, ReplayConfig, ReplayResult};

/// Where a core's current transaction stands in the speculation
/// lifecycle. Per-core (not per-thread) state is sound because HTMX
/// never yields or migrates: a thread occupies its core from `XctBegin`
/// to `XctEnd`, exactly the lifetime of the core's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Between transactions.
    Idle,
    /// Speculating: `attempts` aborted tries so far (the region's start
    /// cycle lives in the speculation window itself).
    Spec { attempts: u32 },
    /// Retries exhausted; the rest of this transaction runs
    /// non-speculatively (it still feeds the conflict oracle).
    Fallback,
}

/// The HTMX policy: per-core speculation windows plus lifecycle state.
struct HtmxPolicy {
    spec: Speculation,
    modes: Vec<Mode>,
}

// Thread-safety audit: each parallel-sweep worker constructs its own
// policy, so policies must be safe to create and drive off the main thread.
const _: () = {
    const fn audit<T: Send + Sync>() {}
    audit::<HtmxPolicy>();
};

impl HtmxPolicy {
    fn new(n_cores: usize, cfg: SpecConfig) -> Self {
        HtmxPolicy {
            spec: Speculation::new(n_cores, cfg),
            modes: vec![Mode::Idle; n_cores],
        }
    }

    /// Abort `core`'s region at effective cycle `t` for `cause`, choosing
    /// retry or fallback. Returns the stall to charge: discarded work +
    /// abort cost (+ linear backoff before a retry). A retry's region
    /// begins after the whole penalty — re-executing the discarded prefix
    /// is modeled as that stall, and moving the region start past it lets
    /// a backed-off retry escape the conflicting window's lifetime.
    fn handle_abort(&mut self, core: usize, cause: AbortCause, t: f64, machine: &Machine) -> f64 {
        let Mode::Spec { attempts } = self.modes[core] else {
            unreachable!("abort outside a speculative region");
        };
        let discarded = (t - self.spec.region_start(core)).max(0.0);
        let abort_cost = machine.timing().htm_abort();
        self.spec.abort(core, cause, t);
        if attempts < self.spec.config().max_retries {
            self.spec.note_retry(discarded);
            let backoff = abort_cost * f64::from(attempts + 1);
            let penalty = discarded + abort_cost + backoff;
            self.spec.begin(core, t + penalty);
            self.modes[core] = Mode::Spec {
                attempts: attempts + 1,
            };
            penalty
        } else {
            self.spec.note_fallback(discarded);
            self.modes[core] = Mode::Fallback;
            discarded + abort_cost
        }
    }
}

impl Policy for HtmxPolicy {
    fn pre(
        &mut self,
        _tid: usize,
        ev: FlatEvent,
        core: usize,
        machine: &Machine,
        _cluster: &Cluster,
        now: f64,
    ) -> Action {
        match ev {
            FlatEvent::XctBegin(_) => {
                self.spec.begin(core, now);
                self.modes[core] = Mode::Spec { attempts: 0 };
                Action::Stall(machine.timing().htm_begin())
            }
            FlatEvent::Data { block, write } => {
                if self.modes[core] == Mode::Idle {
                    // Data outside a transaction (malformed trace):
                    // execute non-speculatively.
                    return Action::Continue;
                }
                // Peek the coherence action this access is about to
                // produce — speculative and fallback accesses alike feed
                // the conflict oracle.
                let dir = machine.hierarchy().directory();
                let action = if write {
                    dir.peek_write(core, block)
                } else {
                    dir.peek_read(core, block)
                };
                // Holder side: doom any concurrently active victims (a
                // no-op under segment-serial replay, where only one window
                // is ever open at a consultation, but kept so the policy
                // stays correct under a preemptive engine).
                self.spec.observe_action(core, block, &action);
                // Requester side: abort-and-retry until this access is
                // conflict-free (each backoff moves the region past more
                // of the conflicting window's lifetime) or we fall back.
                let mut stall = 0.0;
                while matches!(self.modes[core], Mode::Spec { .. }) {
                    let t = now + stall;
                    if self.spec.is_doomed(core)
                        || self.spec.conflicts(core, block, write, t, &action)
                    {
                        stall += self.handle_abort(core, AbortCause::Conflict, t, machine);
                        continue;
                    }
                    match self.spec.record_access(core, block, write) {
                        Ok(()) => break,
                        Err(cause) => {
                            // Capacity: the retry's fresh window records
                            // this access on the next loop iteration.
                            stall += self.handle_abort(core, cause, t, machine);
                        }
                    }
                }
                if stall > 0.0 {
                    Action::Stall(stall)
                } else {
                    Action::Continue
                }
            }
            FlatEvent::XctEnd => {
                let action = match self.modes[core] {
                    Mode::Spec { .. } => {
                        if self.spec.is_doomed(core) {
                            // Doomed with nothing left to re-execute: the
                            // completion stands in for the fallback rerun.
                            let discarded = (now - self.spec.region_start(core)).max(0.0);
                            self.spec.abort(core, AbortCause::Conflict, now);
                            self.spec.note_fallback(discarded);
                            Action::Stall(discarded + machine.timing().htm_abort())
                        } else {
                            self.spec.commit(core, now);
                            Action::Stall(machine.timing().htm_commit())
                        }
                    }
                    _ => Action::Continue,
                };
                self.modes[core] = Mode::Idle;
                action
            }
            // Instruction fetches and operation markers are invisible to
            // speculation — the segment-granular purity contract.
            _ => Action::Continue,
        }
    }

    // Instruction hits and misses are never consulted: whole runs execute
    // inside the machine.
    fn segment_granular(&self) -> bool {
        true
    }

    fn observes_misses(&self) -> bool {
        false
    }

    // Every data event must reach `pre` (peek + record): the data-run
    // fast lane would bypass the conflict oracle.
    fn data_run_granular(&self) -> bool {
        false
    }
}

/// Replay under HTMX speculation with the default [`SpecConfig`].
pub fn run<T: TraceSet + Sync + ?Sized>(traces: &T, cfg: &ReplayConfig) -> ReplayResult {
    run_with(traces, cfg, SpecConfig::default())
}

/// [`run`] with explicit speculation knobs (tests and ablations).
pub fn run_with<T: TraceSet + Sync + ?Sized>(
    traces: &T,
    cfg: &ReplayConfig,
    spec_cfg: SpecConfig,
) -> ReplayResult {
    let mut machine = Machine::new(&cfg.sim);
    let n_cores = cfg.sim.n_cores;
    let order: Vec<usize> = (0..traces.len()).collect();
    let mut policy = HtmxPolicy::new(n_cores, spec_cfg);
    let mut result = run_des(
        &mut machine,
        traces,
        &order,
        |i, _| i % n_cores,
        &mut policy,
        "HTMX",
        cfg,
    );
    result.spec = *policy.spec.stats();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_sim::{BlockAddr, SimConfig};
    use addict_trace::{TraceEvent, XctTrace, XctTypeId};

    fn xct(data: &[(u64, bool)]) -> XctTrace {
        let mut events = vec![
            TraceEvent::XctBegin {
                xct_type: XctTypeId(0),
            },
            TraceEvent::Instr {
                block: BlockAddr(0x1000),
                n_blocks: 4,
                ipb: 10,
            },
        ];
        events.extend(data.iter().map(|&(b, w)| TraceEvent::Data {
            block: BlockAddr(b),
            write: w,
        }));
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XctTypeId(0),
            events,
        }
    }

    fn cfg(cores: usize) -> ReplayConfig {
        ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..Default::default()
        }
    }

    /// Every replay upholds the speculation ledger: each opened region
    /// ends in exactly one commit or abort, and each transaction ends in
    /// exactly one commit or fallback completion.
    fn assert_ledger(r: &ReplayResult) {
        let s = &r.spec;
        assert_eq!(s.begins, s.commits + s.aborts(), "begins ledger: {s:?}");
        assert_eq!(
            s.commits + s.fallbacks,
            r.n_xcts as u64,
            "terminal ledger: {s:?}"
        );
        assert_eq!(s.aborts(), s.retries + s.fallbacks, "abort ledger: {s:?}");
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        // Each core touches its own lines: no conflicts, no aborts.
        let traces: Vec<XctTrace> = (0..8)
            .map(|i| xct(&[(0x9000 + i * 0x100, true), (0x9001 + i * 0x100, false)]))
            .collect();
        let r = run(&traces, &cfg(4));
        assert_eq!(r.scheduler, "HTMX");
        assert_eq!(r.n_xcts, 8);
        assert_eq!(r.spec.commits, 8);
        assert_eq!(r.spec.aborts(), 0);
        assert_eq!(r.spec.fallbacks, 0);
        assert_eq!(r.spec.discarded_cycles, 0.0);
        assert_ledger(&r);
        // Baseline placement: no migrations, no context switches; the
        // begin/commit costs show up as overhead.
        assert_eq!(r.stats.migrations_in(), 0);
        assert_eq!(r.stats.context_switches(), 0);
        assert!(r.stats.overhead_cycles() > 0.0);
    }

    #[test]
    fn contended_writes_cause_conflict_aborts() {
        // Every transaction writes the same line from a different core:
        // later writers doom earlier speculators.
        let traces: Vec<XctTrace> = (0..12)
            .map(|_| {
                xct(&[
                    (0x9000, true),
                    (0x9040, false),
                    (0x9080, false),
                    (0x90c0, false),
                    (0x9000, true),
                ])
            })
            .collect();
        let r = run(&traces, &cfg(4));
        assert!(
            r.spec.aborts_conflict > 0,
            "contended writes must conflict: {:?}",
            r.spec
        );
        assert!(r.spec.discarded_cycles > 0.0);
        assert_ledger(&r);
    }

    #[test]
    fn oversized_windows_capacity_abort_then_fall_back() {
        // One transaction touching more distinct lines than the window
        // fits: capacity aborts burn the retry budget, then fallback.
        let lines: Vec<(u64, bool)> = (0..10u64).map(|i| (0xa000 + i * 0x40, false)).collect();
        let traces = vec![xct(&lines)];
        let spec_cfg = SpecConfig {
            capacity: 4,
            max_retries: 1,
        };
        let r = run_with(&traces, &cfg(2), spec_cfg);
        assert!(r.spec.aborts_capacity >= 1, "{:?}", r.spec);
        assert_eq!(r.spec.fallbacks, 1);
        assert_eq!(r.spec.commits, 0);
        assert_eq!(r.spec.retries, 1);
        assert_ledger(&r);
    }

    #[test]
    fn zero_retries_fall_back_on_first_abort() {
        let lines: Vec<(u64, bool)> = (0..6u64).map(|i| (0xb000 + i * 0x40, true)).collect();
        let traces = vec![xct(&lines), xct(&lines)];
        let spec_cfg = SpecConfig {
            capacity: 2,
            max_retries: 0,
        };
        let r = run_with(&traces, &cfg(2), spec_cfg);
        assert_eq!(r.spec.retries, 0);
        assert_eq!(r.spec.fallbacks, 2);
        assert_ledger(&r);
    }

    #[test]
    fn speculation_costs_time_against_baseline() {
        // Same traces under Baseline and HTMX: identical placement, so
        // HTMX's extra cycles are exactly its speculation stalls.
        let traces: Vec<XctTrace> = (0..8)
            .map(|i| xct(&[(0x9000 + i * 0x100, true), (0x9040 + i * 0x100, false)]))
            .collect();
        let c = cfg(4);
        let base = crate::sched::baseline::run(&traces, &c);
        let htm = run(&traces, &c);
        assert!(htm.total_cycles > base.total_cycles);
        assert_eq!(htm.instructions, base.instructions);
        assert_eq!(base.spec.begins, 0, "baseline must not speculate");
    }
}
