//! Baseline: traditional transaction scheduling. Each transaction starts
//! and finishes on one core; no batching, no migration (Section 4.1).

use addict_sim::Machine;
use addict_trace::TraceSet;

use crate::replay::{run_des, Policy, ReplayConfig, ReplayResult};

struct NoMovement;

// Thread-safety audit: each parallel-sweep worker constructs its own
// policy, so policies must be safe to create and drive off the main thread.
const _: () = {
    const fn audit<T: Send + Sync>() {}
    audit::<NoMovement>();
};

impl Policy for NoMovement {
    // Never reacts to any event: trivially safe for segment execution,
    // and whole runs (misses included) can execute inside the machine.
    fn segment_granular(&self) -> bool {
        true
    }

    fn observes_misses(&self) -> bool {
        false
    }

    // ...and whole data runs execute run-granularly for the same reason.
    fn data_run_granular(&self) -> bool {
        true
    }
}

/// Replay under traditional scheduling.
pub fn run<T: TraceSet + Sync + ?Sized>(traces: &T, cfg: &ReplayConfig) -> ReplayResult {
    let mut machine = Machine::new(&cfg.sim);
    let n_cores = cfg.sim.n_cores;
    let order: Vec<usize> = (0..traces.len()).collect();
    run_des(
        &mut machine,
        traces,
        &order,
        |i, _| i % n_cores,
        &mut NoMovement,
        "Baseline",
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_sim::{BlockAddr, SimConfig};
    use addict_trace::{TraceEvent, XctTrace, XctTypeId};

    fn trace(blocks: u16) -> XctTrace {
        XctTrace {
            xct_type: XctTypeId(0),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(0),
                },
                TraceEvent::Instr {
                    block: BlockAddr(0x1000),
                    n_blocks: blocks,
                    ipb: 10,
                },
                TraceEvent::XctEnd,
            ],
        }
    }

    #[test]
    fn no_migrations_or_switches() {
        let traces: Vec<XctTrace> = (0..32).map(|_| trace(100)).collect();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(4),
            ..Default::default()
        };
        let r = run(&traces, &cfg);
        assert_eq!(r.stats.migrations_in(), 0);
        assert_eq!(r.stats.context_switches(), 0);
        assert_eq!(r.scheduler, "Baseline");
        assert_eq!(r.n_xcts, 32);
    }

    #[test]
    fn work_spreads_across_cores() {
        let traces: Vec<XctTrace> = (0..16).map(|_| trace(50)).collect();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(4),
            ..Default::default()
        };
        let r = run(&traces, &cfg);
        for c in 0..4 {
            assert!(r.stats.cores[c].instructions > 0, "core {c} idle");
        }
        // Same code on every core: each core's first pass misses, later
        // traces on the same core hit.
        assert!(r.stats.l1i_mpki() < 100.0);
    }
}
