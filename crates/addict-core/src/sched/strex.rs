//! STREX (Atta et al., ISCA 2013): same-type transactions are batched and
//! time-multiplexed on a *single* core. A thread runs until it has taken a
//! burst of L1-I misses — the sign it is entering a code stratum not yet
//! cached — then yields so the batch peers re-execute the cached stratum
//! before it is evicted. The lead thread pays the misses; followers hit.
//!
//! Effects reproduced from the paper: modest L1-I miss reduction (the
//! stratification is approximate), the largest latency blow-up of all
//! mechanisms (a transaction shares its core with `batch-1` peers), the
//! highest context-switch rate (Figure 9), and increased LLC pressure
//! from running `batch x cores` transactions concurrently.

use addict_sim::Machine;
use addict_trace::event::FlatEvent;
use addict_trace::TraceSet;

use crate::replay::{batch_order, run_des, Action, Cluster, Policy, ReplayConfig, ReplayResult};

struct StrexPolicy {
    threshold: u64,
    misses_since_resume: Vec<u64>,
}

// Thread-safety audit: parallel-sweep workers drive policies off the main
// thread.
const _: () = {
    const fn audit<T: Send + Sync>() {}
    audit::<StrexPolicy>();
};

impl Policy for StrexPolicy {
    fn post(
        &mut self,
        tid: usize,
        ev: FlatEvent,
        core: usize,
        missed: bool,
        _machine: &Machine,
        cluster: &Cluster,
        _now: f64,
    ) -> Action {
        if !matches!(ev, FlatEvent::Instr { .. }) || !missed {
            return Action::Continue;
        }
        self.misses_since_resume[tid] += 1;
        if self.misses_since_resume[tid] >= self.threshold && !cluster.queues[core].is_empty() {
            // A batch peer is waiting: hand over the stratum.
            return Action::Yield;
        }
        Action::Continue
    }

    fn on_moved(&mut self, tid: usize, _to_core: usize) {
        self.misses_since_resume[tid] = 0;
    }

    // `post` only acts on instruction *misses*, which the segment engine
    // always reports: safe for segment execution.
    fn segment_granular(&self) -> bool {
        true
    }

    // Data events never reach the miss counter (`post` filters them out
    // before looking at `missed`) and `pre` is the default no-op: safe for
    // run-granular data execution.
    fn data_run_granular(&self) -> bool {
        true
    }
}

/// Replay under STREX.
pub fn run<T: TraceSet + Sync + ?Sized>(traces: &T, cfg: &ReplayConfig) -> ReplayResult {
    let mut machine = Machine::new(&cfg.sim);
    let n_cores = cfg.sim.n_cores;
    let batches = batch_order(traces, cfg.batch_size);

    // Whole batches go to one core; batches pack onto the least-loaded
    // core (by planned instructions) so unequal batch sizes balance.
    let mut order = Vec::with_capacity(traces.len());
    let mut placement = vec![0usize; traces.len()];
    let mut core_work = vec![0u64; n_cores];
    for batch in &batches {
        let work: u64 = batch.iter().map(|&tid| traces.instructions_of(tid)).sum();
        let core = (0..n_cores)
            .min_by_key(|&c| core_work[c])
            .expect("cores > 0");
        core_work[core] += work;
        for &tid in batch {
            placement[order.len()] = core;
            order.push(tid);
        }
    }

    let mut policy = StrexPolicy {
        threshold: cfg.strex_miss_threshold,
        misses_since_resume: vec![0; traces.len()],
    };
    run_des(
        &mut machine,
        traces,
        &order,
        |dispatch_idx, _| placement[dispatch_idx],
        &mut policy,
        "STREX",
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_sim::{BlockAddr, SimConfig};
    use addict_trace::{TraceEvent, XctTrace, XctTypeId};

    /// A trace whose footprint exceeds one L1-I (512 blocks at 32 KB).
    fn big_trace() -> XctTrace {
        let mut events = vec![TraceEvent::XctBegin {
            xct_type: XctTypeId(0),
        }];
        for chunk in 0..3 {
            events.push(TraceEvent::Instr {
                block: BlockAddr(0x1000 + chunk * 400),
                n_blocks: 400,
                ipb: 10,
            });
        }
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XctTypeId(0),
            events,
        }
    }

    fn cfg(cores: usize) -> ReplayConfig {
        ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..Default::default()
        }
        .with_batch_size(4)
    }

    #[test]
    fn batch_shares_one_core_with_switches() {
        let traces: Vec<XctTrace> = (0..4).map(|_| big_trace()).collect();
        let r = run(&traces, &cfg(4));
        assert!(
            r.stats.context_switches() > 0,
            "stratified execution must switch"
        );
        assert_eq!(r.stats.migrations_in(), 0, "STREX never changes cores");
        // All the work happened on one core.
        let busy: Vec<usize> = (0..4)
            .filter(|&c| r.stats.cores[c].instructions > 0)
            .collect();
        assert_eq!(busy, vec![0]);
    }

    #[test]
    fn followers_reuse_leader_strata() {
        let traces: Vec<XctTrace> = (0..4).map(|_| big_trace()).collect();
        let strex = run(&traces, &cfg(4));
        let base = crate::sched::baseline::run(&traces, &cfg(4));
        // Baseline puts each 1200-block transaction on its own cold core:
        // everyone misses everything. STREX lets followers reuse.
        assert!(
            strex.stats.l1i_misses() < base.stats.l1i_misses(),
            "STREX {} vs baseline {}",
            strex.stats.l1i_misses(),
            base.stats.l1i_misses()
        );
    }

    #[test]
    fn latency_stretches_with_batch() {
        let traces: Vec<XctTrace> = (0..4).map(|_| big_trace()).collect();
        let strex = run(&traces, &cfg(4));
        let base = crate::sched::baseline::run(&traces, &cfg(4));
        assert!(
            strex.avg_latency_cycles > 2.0 * base.avg_latency_cycles,
            "time multiplexing must stretch latency: {} vs {}",
            strex.avg_latency_cycles,
            base.avg_latency_cycles
        );
    }
}
