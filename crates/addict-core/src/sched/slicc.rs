//! SLICC (Atta et al., MICRO 2012): hardware-heuristic computation
//! spreading. A thread executes on a core until its L1-I has absorbed a
//! stratum of new code (a run of misses), then migrates — preferring a
//! core whose L1-I already holds the code it is touching, else an idle
//! core whose cache it can fill next. Over time the batch's combined
//! instruction footprint self-assembles across the cores' L1-Is and
//! threads chase it around ("instruction cache collectives").
//!
//! SLICC is software-oblivious: it cannot know operation boundaries, so it
//! migrates more often than ADDICT and sometimes mid-action (the paper's
//! motivation for software guidance).

use addict_sim::Machine;
use addict_trace::event::FlatEvent;
use addict_trace::TraceSet;

use crate::replay::{
    batch_order, run_des_admitted, Action, Admission, Cluster, Policy, ReplayConfig, ReplayResult,
};

struct SliccPolicy {
    fill_threshold: u64,
    misses_since_arrival: Vec<u64>,
    n_cores: usize,
}

// Thread-safety audit: parallel-sweep workers drive policies off the main
// thread.
const _: () = {
    const fn audit<T: Send + Sync>() {}
    audit::<SliccPolicy>();
};

impl Policy for SliccPolicy {
    fn post(
        &mut self,
        tid: usize,
        ev: FlatEvent,
        core: usize,
        missed: bool,
        machine: &Machine,
        cluster: &Cluster,
        now: f64,
    ) -> Action {
        let FlatEvent::Instr { block, .. } = ev else {
            return Action::Continue;
        };
        if !missed {
            return Action::Continue;
        }
        self.misses_since_arrival[tid] += 1;
        if self.misses_since_arrival[tid] < self.fill_threshold {
            return Action::Continue;
        }
        // This core's L1-I is full of this thread's recent code; move on.
        // Preference 1: a core that already holds the block we just
        // fetched (a peer installed this stratum there).
        let mut dest = None;
        for c in 0..self.n_cores {
            if c != core && machine.l1i_contains(addict_sim::CoreId(c), block) {
                dest = Some(c);
                if cluster.is_idle(c, now) {
                    break; // idle holder: best case
                }
            }
        }
        // Preference 2: an idle core to fill with the next stratum.
        if dest.is_none() {
            dest = (0..self.n_cores).find(|&c| c != core && cluster.is_idle(c, now));
        }
        // Preference 3: the least-loaded other core.
        let dest = dest.unwrap_or_else(|| {
            let others: Vec<usize> = (0..self.n_cores).filter(|&c| c != core).collect();
            cluster.earliest_of(&others)
        });
        Action::MigrateTo(dest)
    }

    fn on_moved(&mut self, tid: usize, _to_core: usize) {
        self.misses_since_arrival[tid] = 0;
    }

    // `post` only acts on instruction *misses*, which the segment engine
    // always reports: safe for segment execution.
    fn segment_granular(&self) -> bool {
        true
    }

    // SLICC chases *instruction* cache collectives: `post` ignores data
    // events entirely and `pre` is the default no-op, so data runs execute
    // run-granularly.
    fn data_run_granular(&self) -> bool {
        true
    }
}

/// Replay under SLICC.
pub fn run<T: TraceSet + Sync + ?Sized>(traces: &T, cfg: &ReplayConfig) -> ReplayResult {
    let mut machine = Machine::new(&cfg.sim);
    let n_cores = cfg.sim.n_cores;
    let batches = batch_order(traces, cfg.batch_size);

    // Batch members spread over the cores.
    let mut order = Vec::with_capacity(traces.len());
    let mut placement = vec![0usize; traces.len()];
    let mut batch_of = Vec::with_capacity(traces.len());
    let mut type_run = 0usize;
    let mut prev_type = None;
    for batch in &batches {
        let ty = traces.xct_type(batch[0]);
        if prev_type.is_some_and(|p| p != ty) {
            type_run += 1;
        }
        prev_type = Some(ty);
        for (j, &tid) in batch.iter().enumerate() {
            placement[order.len()] = j % n_cores;
            batch_of.push(type_run);
            order.push(tid);
        }
    }

    let mut policy = SliccPolicy {
        fill_threshold: cfg.slicc_fill_threshold,
        misses_since_arrival: vec![0; traces.len()],
        n_cores,
    };
    run_des_admitted(
        &mut machine,
        traces,
        &order,
        |dispatch_idx, _| placement[dispatch_idx],
        &mut policy,
        "SLICC",
        cfg,
        Admission::BatchSerial {
            inflight: cfg.batch_size,
            batch_of,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_sim::{BlockAddr, SimConfig};
    use addict_trace::{TraceEvent, XctTrace, XctTypeId};

    /// A trace spanning multiple L1-I-sized strata of shared code.
    fn big_trace() -> XctTrace {
        let mut events = vec![TraceEvent::XctBegin {
            xct_type: XctTypeId(0),
        }];
        for chunk in 0..4 {
            events.push(TraceEvent::Instr {
                block: BlockAddr(0x2000 + chunk * 300),
                n_blocks: 300,
                ipb: 10,
            });
        }
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XctTypeId(0),
            events,
        }
    }

    fn cfg(cores: usize) -> ReplayConfig {
        ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..Default::default()
        }
        .with_batch_size(4)
    }

    #[test]
    fn threads_migrate_across_cores() {
        let traces: Vec<XctTrace> = (0..4).map(|_| big_trace()).collect();
        let r = run(&traces, &cfg(4));
        assert!(r.stats.migrations_in() > 0, "SLICC must migrate");
        assert_eq!(r.stats.context_switches(), 0);
        // Several cores end up executing instructions.
        let busy = (0..4)
            .filter(|&c| r.stats.cores[c].instructions > 0)
            .count();
        assert!(busy >= 2, "computation should spread, busy={busy}");
    }

    #[test]
    fn misses_drop_versus_baseline() {
        let traces: Vec<XctTrace> = (0..8).map(|_| big_trace()).collect();
        let slicc = run(&traces, &cfg(4));
        let base = crate::sched::baseline::run(&traces, &cfg(4));
        assert!(
            slicc.stats.l1i_misses() < base.stats.l1i_misses(),
            "SLICC {} vs baseline {}",
            slicc.stats.l1i_misses(),
            base.stats.l1i_misses()
        );
    }

    #[test]
    fn data_locality_suffers() {
        // Threads leave their data behind when they migrate (Section 4.3).
        let mut traces = Vec::new();
        for i in 0..8u64 {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(0),
            }];
            for chunk in 0..4u64 {
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x2000 + chunk * 300),
                    n_blocks: 300,
                    ipb: 10,
                });
                // Private data re-touched around the instruction strata.
                for d in 0..16u64 {
                    events.push(TraceEvent::Data {
                        block: BlockAddr(0x100_0000 + i * 64 + d),
                        write: false,
                    });
                }
            }
            events.push(TraceEvent::XctEnd);
            traces.push(XctTrace {
                xct_type: XctTypeId(0),
                events,
            });
        }
        let slicc = run(&traces, &cfg(4));
        let base = crate::sched::baseline::run(&traces, &cfg(4));
        assert!(
            slicc.stats.l1d_misses() > base.stats.l1d_misses(),
            "migration should hurt L1-D: {} vs {}",
            slicc.stats.l1d_misses(),
            base.stats.l1d_misses()
        );
    }
}
