//! ADDICT's runtime (Algorithm 2, lines 16–31): batched same-type
//! transactions enter at their type's entry core and migrate at the
//! planned migration points, with order-dependency tracking (a point fires
//! only after its predecessor in the sequence — line 25) and dynamic core
//! reassignment when the planned destination is busy (Section 3.2.3).
//!
//! Because every core now executes one cache-sized *action* of one
//! operation for every transaction in the batch, its L1-I stays resident
//! after the first (leader) transaction warms it — the source of the
//! paper's 85% L1-I miss reduction.

use addict_sim::Machine;
use addict_trace::event::FlatEvent;
use addict_trace::{OpKind, TraceSet, XctTypeId};

use crate::plan::{AssignmentPlan, Slot, XctPlan};
use crate::replay::{
    batch_order, run_des_admitted, Action, Admission, Cluster, Policy, ReplayConfig, ReplayResult,
};

#[derive(Debug, Clone, Copy, Default)]
struct ThreadState {
    current_op: Option<OpKind>,
    next_point: usize,
}

struct AddictPolicy<'a> {
    plan: &'a AssignmentPlan,
    xct_types: Vec<XctTypeId>,
    state: Vec<ThreadState>,
    n_cores: usize,
    /// Dynamic reassignment of idle cores (Section 3.2.3); off for the
    /// ablation bench.
    reassign: bool,
    /// The slot each core most recently served — its *warm* action.
    /// Reassignment is sticky: a stolen core keeps serving its new slot
    /// until demand shifts again, so its L1-I stays hot.
    last_served: Vec<Option<(XctTypeId, usize)>>,
}

// Thread-safety audit: parallel-sweep workers drive policies off the main
// thread, and the borrowed assignment plan is shared across workers.
const _: () = {
    const fn audit<T: Send + Sync>() {}
    audit::<AddictPolicy<'_>>();
    audit::<AssignmentPlan>();
};

impl<'a> AddictPolicy<'a> {
    /// The plan borrow outlives `&self` (it comes from the external plan),
    /// so callers can keep it while mutating per-thread state.
    fn xct_plan(&self, tid: usize) -> Option<&'a XctPlan> {
        let p = self.plan.of(self.xct_types[tid])?;
        (!p.fallback).then_some(p)
    }

    /// Pick a core for `slot`. Preference order:
    /// 1. an idle core already warm with this slot's action,
    /// 2. an idle planned (home) core,
    /// 3. with reassignment on: any idle core — it is *reassigned* to this
    ///    migration point and stays warm for it (Section 3.2.3),
    /// 4. the least-loaded warm-or-home core (the transaction waits in
    ///    that core's work queue — Algorithm 2 line 31).
    fn choose_core(
        &self,
        key: (XctTypeId, usize),
        slot: &Slot,
        cluster: &Cluster,
        now: f64,
    ) -> usize {
        for c in 0..self.n_cores {
            if self.last_served[c] == Some(key) && cluster.is_idle(c, now) {
                return c;
            }
        }
        for &c in &slot.cores {
            if cluster.is_idle(c, now) {
                return c;
            }
        }
        if self.reassign {
            if let Some(c) = (0..self.n_cores).find(|&c| cluster.is_idle(c, now)) {
                return c;
            }
        }
        let candidates: Vec<usize> = (0..self.n_cores)
            .filter(|&c| self.last_served[c] == Some(key))
            .chain(slot.cores.iter().copied())
            .collect();
        cluster.earliest_of(&candidates)
    }

    fn migrate_to_slot(
        &mut self,
        xct: XctTypeId,
        slot_id: usize,
        xp: &XctPlan,
        core: usize,
        cluster: &Cluster,
        now: f64,
    ) -> Action {
        let key = (xct, slot_id);
        let slot = &xp.slots[slot_id];
        if self.last_served[core] == Some(key) || slot.cores.contains(&core) {
            // The action's code is (or will be) resident right here.
            self.last_served[core] = Some(key);
            return Action::Continue;
        }
        let dest = self.choose_core(key, slot, cluster, now);
        if dest == core {
            self.last_served[core] = Some(key);
            Action::Continue
        } else {
            self.last_served[dest] = Some(key);
            Action::MigrateTo(dest)
        }
    }
}

impl Policy for AddictPolicy<'_> {
    /// Instruction events: migrate *before* executing a migration point so
    /// the point's block is fetched on its assigned core.
    fn pre(
        &mut self,
        tid: usize,
        ev: FlatEvent,
        core: usize,
        _machine: &Machine,
        cluster: &Cluster,
        now: f64,
    ) -> Action {
        let FlatEvent::Instr { block, .. } = ev else {
            return Action::Continue;
        };
        let Some(op) = self.state[tid].current_op else {
            return Action::Continue;
        };
        let Some(xp) = self.xct_plan(tid) else {
            return Action::Continue;
        };
        let Some(op_plan) = xp.ops.get(&op) else {
            return Action::Continue;
        };
        let next = self.state[tid].next_point;
        if next >= op_plan.points.len() || op_plan.points[next].addr != block {
            // Either all points fired, or this address is not the expected
            // next point (the line 25 order-dependency check: an address
            // reached before its predecessor does not trigger).
            return Action::Continue;
        }
        self.state[tid].next_point += 1;
        let slot = op_plan.points[next].slot;
        self.migrate_to_slot(self.xct_types[tid], slot, xp, core, cluster, now)
    }

    /// Markers: transaction entry and operation entry migrations happen
    /// after the (free) marker event is consumed.
    fn post(
        &mut self,
        tid: usize,
        ev: FlatEvent,
        core: usize,
        _missed: bool,
        _machine: &Machine,
        cluster: &Cluster,
        now: f64,
    ) -> Action {
        match ev {
            FlatEvent::XctBegin(_) => {
                self.state[tid] = ThreadState::default();
                let Some(xp) = self.xct_plan(tid) else {
                    return Action::Continue;
                };
                self.migrate_to_slot(self.xct_types[tid], xp.entry_slot, xp, core, cluster, now)
            }
            FlatEvent::OpBegin(op) => {
                self.state[tid] = ThreadState {
                    current_op: Some(op),
                    next_point: 0,
                };
                let Some(xp) = self.xct_plan(tid) else {
                    return Action::Continue;
                };
                let Some(op_plan) = xp.ops.get(&op) else {
                    return Action::Continue;
                };
                let slot = op_plan.entry_slot;
                self.migrate_to_slot(self.xct_types[tid], slot, xp, core, cluster, now)
            }
            FlatEvent::OpEnd(_) => {
                self.state[tid].current_op = None;
                Action::Continue
            }
            _ => Action::Continue,
        }
    }

    // `pre` acts on instruction hits only at the thread's pending migration
    // point, which `watch_addr` reports; `post` acts only on markers. Safe
    // for segment execution, and — since misses trigger nothing either —
    // whole runs (misses included) execute inside the machine.
    fn segment_granular(&self) -> bool {
        true
    }

    fn observes_misses(&self) -> bool {
        false
    }

    // Migration points are *instruction* addresses: `pre` ignores data
    // events, `post` acts only on markers, so whole data runs execute
    // inside the machine too.
    fn data_run_granular(&self) -> bool {
        true
    }

    /// The next planned migration point of `tid`'s current operation: the
    /// one address where `pre` must see the instruction stream (line 25's
    /// order dependency means *only* `points[next]` can fire — an address
    /// matching a later point is ignored, exactly as in per-block replay).
    fn watch_addr(&self, tid: usize) -> Option<addict_sim::BlockAddr> {
        let op = self.state[tid].current_op?;
        let xp = self.xct_plan(tid)?;
        let op_plan = xp.ops.get(&op)?;
        op_plan
            .points
            .get(self.state[tid].next_point)
            .map(|p| p.addr)
    }
}

/// Replay under ADDICT with the given assignment plan.
pub fn run<T: TraceSet + Sync + ?Sized>(
    traces: &T,
    plan: &AssignmentPlan,
    cfg: &ReplayConfig,
) -> ReplayResult {
    run_with_options(traces, plan, cfg, false)
}

/// Replay with dynamic reassignment switchable (ablation).
pub fn run_with_options<T: TraceSet + Sync + ?Sized>(
    traces: &T,
    plan: &AssignmentPlan,
    cfg: &ReplayConfig,
    reassign: bool,
) -> ReplayResult {
    let mut machine = Machine::new(&cfg.sim);
    let n_cores = cfg.sim.n_cores;
    let batches = batch_order(traces, cfg.batch_size);
    let mut order = Vec::with_capacity(traces.len());
    let mut batch_of = Vec::with_capacity(traces.len());
    // Same-type batches flow into each other; the admission gate only
    // applies when the *type* changes (a different plan takes the cores).
    let mut type_run = 0usize;
    let mut prev_type = None;
    for batch in &batches {
        let ty = traces.xct_type(batch[0]);
        if prev_type.is_some_and(|p| p != ty) {
            type_run += 1;
        }
        prev_type = Some(ty);
        for &tid in batch {
            batch_of.push(type_run);
            order.push(tid);
        }
    }

    let xct_types: Vec<XctTypeId> = (0..traces.len()).map(|i| traces.xct_type(i)).collect();
    let mut policy = AddictPolicy {
        plan,
        xct_types,
        state: vec![ThreadState::default(); traces.len()],
        n_cores,
        reassign,
        last_served: vec![None; n_cores],
    };

    // Entry placement: the type's entry-slot core, or round-robin for
    // fallback types.
    let plan_ref = plan;
    run_des_admitted(
        &mut machine,
        traces,
        &order,
        move |dispatch_idx, xct_type| match plan_ref.of(xct_type) {
            Some(xp) if !xp.fallback => xp.slots[xp.entry_slot].cores[0],
            _ => dispatch_idx % n_cores,
        },
        &mut policy,
        "ADDICT",
        cfg,
        Admission::BatchSerial {
            inflight: cfg.batch_size,
            batch_of,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::find_migration_points;
    use crate::plan::PlanConfig;
    use addict_sim::{BlockAddr, SimConfig};
    use addict_trace::{TraceEvent, XctTrace, XctTypeId};

    const XT: XctTypeId = XctTypeId(0);

    /// A transaction running two probes, each walking 600 blocks — more
    /// than one 512-block L1-I, so Algorithm 1 finds one point per probe.
    fn trace() -> XctTrace {
        let mut events = vec![TraceEvent::XctBegin { xct_type: XT }];
        for _ in 0..2 {
            events.push(TraceEvent::OpBegin { op: OpKind::Probe });
            events.push(TraceEvent::Instr {
                block: BlockAddr(0x8000),
                n_blocks: 600,
                ipb: 10,
            });
            events.push(TraceEvent::OpEnd { op: OpKind::Probe });
        }
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XT,
            events,
        }
    }

    fn cfg(cores: usize) -> ReplayConfig {
        ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..Default::default()
        }
        .with_batch_size(cores)
    }

    fn setup(cores: usize) -> (Vec<XctTrace>, AssignmentPlan, ReplayConfig) {
        let cfg = cfg(cores);
        let profile: Vec<XctTrace> = (0..4).map(|_| trace()).collect();
        let map = find_migration_points(&profile, cfg.sim.l1i);
        let plan = AssignmentPlan::build(&map, PlanConfig::new(cores));
        let traces: Vec<XctTrace> = (0..8).map(|_| trace()).collect();
        (traces, plan, cfg)
    }

    #[test]
    fn migrates_at_planned_points() {
        let (traces, plan, cfg) = setup(4);
        let xp = plan.of(XT).unwrap();
        assert!(!xp.fallback);
        assert_eq!(xp.ops[&OpKind::Probe].points.len(), 1);
        let r = run(&traces, &plan, &cfg);
        // Per transaction: entry + 2x (op entry + 1 point) >= 4 moves
        // every transaction after the first (the first starts on the
        // entry core already).
        assert!(
            r.stats.migrations_in() as usize >= traces.len() * 3,
            "migrations = {}",
            r.stats.migrations_in()
        );
        assert_eq!(r.stats.context_switches(), 0);
    }

    #[test]
    fn slashes_l1i_misses_versus_baseline() {
        let (traces, plan, cfg) = setup(4);
        let addict = run(&traces, &plan, &cfg);
        let base = crate::sched::baseline::run(&traces, &cfg);
        // Each probe's 600-block walk thrashes a single L1-I (512 lines)
        // every time under baseline; under ADDICT the two halves live on
        // different cores and stay resident across the batch.
        assert!(
            (addict.stats.l1i_misses() as f64) < 0.5 * base.stats.l1i_misses() as f64,
            "ADDICT {} vs baseline {}",
            addict.stats.l1i_misses(),
            base.stats.l1i_misses()
        );
    }

    /// A transaction spanning four distinct operations, each with its own
    /// code region — the realistic shape where ADDICT's pipeline spreads
    /// work across op slots.
    fn multi_op_trace() -> XctTrace {
        let mut events = vec![TraceEvent::XctBegin { xct_type: XT }];
        for (i, op) in [OpKind::Probe, OpKind::Update, OpKind::Insert, OpKind::Scan]
            .iter()
            .enumerate()
        {
            events.push(TraceEvent::OpBegin { op: *op });
            events.push(TraceEvent::Instr {
                block: BlockAddr(0x20000 + i as u64 * 0x1000),
                n_blocks: 400,
                ipb: 10,
            });
            events.push(TraceEvent::OpEnd { op: *op });
        }
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XT,
            events,
        }
    }

    #[test]
    fn total_cycles_beat_baseline_on_thrashing_workload() {
        let cfg = cfg(8);
        let profile: Vec<XctTrace> = (0..4).map(|_| multi_op_trace()).collect();
        let map = find_migration_points(&profile, cfg.sim.l1i);
        let plan = AssignmentPlan::build(&map, PlanConfig::new(8));
        let traces: Vec<XctTrace> = (0..32).map(|_| multi_op_trace()).collect();
        let addict = run(&traces, &plan, &cfg);
        let base = crate::sched::baseline::run(&traces, &cfg);
        // The 1600-block transaction thrashes any single L1-I under
        // baseline; ADDICT splits it into four resident actions.
        assert!(
            addict.stats.l1i_misses() < base.stats.l1i_misses() / 2,
            "ADDICT {} vs baseline {} misses",
            addict.stats.l1i_misses(),
            base.stats.l1i_misses()
        );
        assert!(
            addict.total_cycles < base.total_cycles,
            "ADDICT {} vs baseline {}",
            addict.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn scarce_cores_trim_points_but_still_migrate() {
        // 2 cores: the internal point is dropped, entries remain; the
        // transaction still pipelines between entry and op-entry cores.
        let (traces, plan, cfg) = setup(2);
        let xp = plan.of(XT).unwrap();
        assert!(!xp.fallback);
        assert!(xp.ops[&OpKind::Probe].points.is_empty());
        let r = run(&traces, &plan, &cfg);
        assert!(r.stats.migrations_in() > 0);
    }

    #[test]
    fn fallback_type_runs_without_migrations() {
        // A single core cannot even host the entries: the plan falls back
        // to traditional scheduling.
        let (traces, plan, cfg) = setup(1);
        assert!(plan.of(XT).unwrap().fallback);
        let r = run(&traces, &plan, &cfg);
        assert_eq!(r.stats.migrations_in(), 0);
    }

    #[test]
    fn order_dependency_prevents_early_firing() {
        // A trace that touches the migration-point block *before* the op
        // begins must not trigger a migration for it.
        let (profile, plan, cfg) = setup(4);
        let map_point = {
            let map = find_migration_points(&profile, cfg.sim.l1i);
            map.points(XT, OpKind::Probe).unwrap()[0]
        };
        let mut events = vec![TraceEvent::XctBegin { xct_type: XT }];
        // Touch the point's block outside any operation...
        events.push(TraceEvent::Instr {
            block: map_point,
            n_blocks: 1,
            ipb: 10,
        });
        events.push(TraceEvent::XctEnd);
        let stray = vec![XctTrace {
            xct_type: XT,
            events,
        }];
        let r = run(&stray, &plan, &cfg);
        // Only the initial placement happens; the stray touch of the
        // migration-point address fires nothing.
        assert_eq!(r.stats.migrations_in(), 0);
    }
}
