//! The four scheduling mechanisms of Section 4.1, plus the speculative
//! HTMX scheduler built on the speculation subsystem (beyond the paper).
//!
//! | Mechanism | Placement | Movement |
//! |-----------|-----------|----------|
//! | Baseline  | one core per transaction | none |
//! | STREX     | one core per same-type batch | yields the core after a burst of L1-I misses (stratified time multiplexing) |
//! | SLICC     | batch spread over cores | migrates when the L1-I has absorbed a stratum, preferring cores that already hold the current code |
//! | ADDICT    | batch enters at the planned entry core | migrates at the software-planned migration points (Algorithm 2) |
//! | HTMX      | one core per transaction | none — each transaction runs as a bounded speculative region with retries and a non-speculative fallback |

pub mod addict;
pub mod baseline;
pub mod htmx;
pub mod slicc;
pub mod strex;

use addict_trace::TraceSet;

use crate::algorithm1::MigrationMap;
use crate::plan::{AssignmentPlan, PlanConfig};
use crate::replay::{ReplayConfig, ReplayResult};

/// Which scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Traditional scheduling: a transaction runs start-to-finish on one
    /// core.
    Baseline,
    /// STREX (Atta et al., ISCA 2013).
    Strex,
    /// SLICC (Atta et al., MICRO 2012).
    Slicc,
    /// ADDICT (this paper).
    Addict,
    /// HTMX: bounded-read/write-set hardware-transaction speculation over
    /// the MESI directory (beyond the paper; see `sched::htmx`).
    Htmx,
}

impl SchedulerKind {
    /// All five: the paper's four in presentation order, then HTMX.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::Baseline,
        SchedulerKind::Strex,
        SchedulerKind::Slicc,
        SchedulerKind::Addict,
        SchedulerKind::Htmx,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "Baseline",
            SchedulerKind::Strex => "STREX",
            SchedulerKind::Slicc => "SLICC",
            SchedulerKind::Addict => "ADDICT",
            SchedulerKind::Htmx => "HTMX",
        }
    }

    /// Canonical lowercase token for serialized forms (job specs, cache
    /// keys). Round-trips through [`FromStr`](std::str::FromStr).
    pub fn id(self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "baseline",
            SchedulerKind::Strex => "strex",
            SchedulerKind::Slicc => "slicc",
            SchedulerKind::Addict => "addict",
            SchedulerKind::Htmx => "htmx",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    /// Case-insensitive parse of a scheduler name (`ADDICT`, `addict`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon = s.to_ascii_lowercase();
        SchedulerKind::ALL
            .iter()
            .copied()
            .find(|k| k.id() == canon)
            .ok_or_else(|| {
                let ids: Vec<&str> = SchedulerKind::ALL.iter().map(|k| k.id()).collect();
                format!(
                    "unknown scheduler {s:?} (expected one of {})",
                    ids.join(", ")
                )
            })
    }
}

/// Replay `traces` under the chosen scheduler.
///
/// ADDICT requires the migration map produced by Algorithm 1 over a
/// *separate* profiling trace set (the paper profiles on traces 1–1000 and
/// evaluates on 1001–2000).
///
/// # Panics
/// Panics if `kind` is [`SchedulerKind::Addict`] and `map` is `None`.
pub fn run_scheduler<T: TraceSet + Sync + ?Sized>(
    kind: SchedulerKind,
    traces: &T,
    map: Option<&MigrationMap>,
    cfg: &ReplayConfig,
) -> ReplayResult {
    match kind {
        SchedulerKind::Baseline => baseline::run(traces, cfg),
        SchedulerKind::Strex => strex::run(traces, cfg),
        SchedulerKind::Slicc => slicc::run(traces, cfg),
        SchedulerKind::Addict => {
            let map = map.expect("ADDICT needs Algorithm 1's migration map");
            let plan = AssignmentPlan::build(map, PlanConfig::new(cfg.sim.n_cores));
            addict::run(traces, &plan, cfg)
        }
        SchedulerKind::Htmx => htmx::run(traces, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_ids_round_trip() {
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.id().parse::<SchedulerKind>().unwrap(), kind);
            assert_eq!(kind.name().parse::<SchedulerKind>().unwrap(), kind);
        }
        assert!("stress".parse::<SchedulerKind>().is_err());
        assert!("".parse::<SchedulerKind>().is_err());
    }
}
