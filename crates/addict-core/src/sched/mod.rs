//! The four scheduling mechanisms of Section 4.1.
//!
//! | Mechanism | Placement | Movement |
//! |-----------|-----------|----------|
//! | Baseline  | one core per transaction | none |
//! | STREX     | one core per same-type batch | yields the core after a burst of L1-I misses (stratified time multiplexing) |
//! | SLICC     | batch spread over cores | migrates when the L1-I has absorbed a stratum, preferring cores that already hold the current code |
//! | ADDICT    | batch enters at the planned entry core | migrates at the software-planned migration points (Algorithm 2) |

pub mod addict;
pub mod baseline;
pub mod slicc;
pub mod strex;

use addict_trace::TraceSet;

use crate::algorithm1::MigrationMap;
use crate::plan::{AssignmentPlan, PlanConfig};
use crate::replay::{ReplayConfig, ReplayResult};

/// Which scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Traditional scheduling: a transaction runs start-to-finish on one
    /// core.
    Baseline,
    /// STREX (Atta et al., ISCA 2013).
    Strex,
    /// SLICC (Atta et al., MICRO 2012).
    Slicc,
    /// ADDICT (this paper).
    Addict,
}

impl SchedulerKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Baseline,
        SchedulerKind::Strex,
        SchedulerKind::Slicc,
        SchedulerKind::Addict,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "Baseline",
            SchedulerKind::Strex => "STREX",
            SchedulerKind::Slicc => "SLICC",
            SchedulerKind::Addict => "ADDICT",
        }
    }
}

/// Replay `traces` under the chosen scheduler.
///
/// ADDICT requires the migration map produced by Algorithm 1 over a
/// *separate* profiling trace set (the paper profiles on traces 1–1000 and
/// evaluates on 1001–2000).
///
/// # Panics
/// Panics if `kind` is [`SchedulerKind::Addict`] and `map` is `None`.
pub fn run_scheduler<T: TraceSet + ?Sized>(
    kind: SchedulerKind,
    traces: &T,
    map: Option<&MigrationMap>,
    cfg: &ReplayConfig,
) -> ReplayResult {
    match kind {
        SchedulerKind::Baseline => baseline::run(traces, cfg),
        SchedulerKind::Strex => strex::run(traces, cfg),
        SchedulerKind::Slicc => slicc::run(traces, cfg),
        SchedulerKind::Addict => {
            let map = map.expect("ADDICT needs Algorithm 1's migration map");
            let plan = AssignmentPlan::build(map, PlanConfig::new(cfg.sim.n_cores));
            addict::run(traces, &plan, cfg)
        }
    }
}
