//! Algorithm 2, lines 1–14: core assignment, plus the Section 3.2.3 load
//! balancing.
//!
//! Each transaction type gets a *plan*: a list of **slots** (core groups),
//! one for the transaction entry, one per operation entry, and one per
//! migration point. Load balancing follows Section 3.2.3:
//!
//! * **more slots than cores** (per type) — internal migration points are
//!   dropped, least-frequent operation first, last point first, until the
//!   plan fits; if even `1 + #ops` entries exceed the cores, the plan
//!   falls back to traditional scheduling for that type;
//! * **cross-type placement** — the paper runs "multiple batches of
//!   transactions in parallel" when cores allow; we realize that by
//!   placing *all* types' slots onto physical cores with weighted
//!   longest-processing-time packing (weight = type share × operation
//!   frequency), so a frequent type's hot action does not share a core
//!   with another frequent action while other cores idle;
//! * **fewer slots than cores** — spare cores replicate the heaviest
//!   slots (frequency-proportional replication: with ten cores in the
//!   paper's example every probe slot gets a second core and the leftover
//!   goes to update's entry).

use std::collections::HashMap;

use addict_sim::BlockAddr;
use addict_trace::{OpKind, XctTypeId};

use crate::algorithm1::MigrationMap;

/// Plan-construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Cores available.
    pub n_cores: usize,
    /// Replicate heavy slots onto idle cores (Section 3.2.3). Disable for
    /// the ablation bench.
    pub replicate: bool,
}

impl PlanConfig {
    /// Plan for a machine with `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        PlanConfig {
            n_cores,
            replicate: true,
        }
    }
}

/// A group of cores serving one program location.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Slot {
    /// Physical core ids (≥1 after assignment unless the plan fell back).
    pub cores: Vec<usize>,
}

/// One migration point within an operation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedPoint {
    /// The instruction block that triggers the migration.
    pub addr: BlockAddr,
    /// Slot index within the owning [`XctPlan`].
    pub slot: usize,
}

/// Per-operation plan.
#[derive(Debug, Clone)]
pub struct OpPlan {
    /// The operation.
    pub op: OpKind,
    /// Slot for the operation's entry.
    pub entry_slot: usize,
    /// Ordered migration points (order encodes the `prev` chain of
    /// Algorithm 2 line 25).
    pub points: Vec<PlannedPoint>,
}

/// Per-transaction-type plan.
#[derive(Debug, Clone)]
pub struct XctPlan {
    /// Slot for the transaction entry (core0 in the paper).
    pub entry_slot: usize,
    /// Operation plans, keyed by kind.
    pub ops: HashMap<OpKind, OpPlan>,
    /// The slots, indexed by the ids above.
    pub slots: Vec<Slot>,
    /// True when the machine has too few cores even for the operation
    /// entries; the scheduler should run this type traditionally.
    pub fallback: bool,
}

impl XctPlan {
    /// Total migration points planned (diagnostics).
    pub fn n_points(&self) -> usize {
        self.ops.values().map(|o| o.points.len()).sum()
    }
}

/// Plans for every transaction type of a workload.
#[derive(Debug, Clone, Default)]
pub struct AssignmentPlan {
    per_type: HashMap<XctTypeId, XctPlan>,
}

impl AssignmentPlan {
    /// Build plans for every transaction type in the migration map.
    pub fn build(map: &MigrationMap, cfg: PlanConfig) -> AssignmentPlan {
        Builder::new(map, cfg).build()
    }

    /// The plan for one transaction type.
    pub fn of(&self, xct: XctTypeId) -> Option<&XctPlan> {
        self.per_type.get(&xct)
    }

    /// Transaction types covered.
    pub fn types(&self) -> impl Iterator<Item = XctTypeId> + '_ {
        self.per_type.keys().copied()
    }
}

/// A slot skeleton before physical cores are assigned.
struct ProtoSlot {
    xct: XctTypeId,
    slot_idx: usize,
    weight: f64,
}

struct Builder<'m> {
    map: &'m MigrationMap,
    cfg: PlanConfig,
}

impl<'m> Builder<'m> {
    fn new(map: &'m MigrationMap, cfg: PlanConfig) -> Self {
        Builder { map, cfg }
    }

    fn build(self) -> AssignmentPlan {
        let mut plan = AssignmentPlan::default();
        let mut protos: Vec<ProtoSlot> = Vec::new();

        // Phase 1: per-type skeletons (entries + trimmed points), weights.
        let total_traces: f64 = self
            .map
            .xct_types()
            .iter()
            .map(|&x| self.map.type_frequency(x) as f64)
            .sum::<f64>()
            .max(1.0);
        for xct in self.map.xct_types() {
            let share = self.map.type_frequency(xct) as f64 / total_traces;
            let (xp, weights) = self.skeleton(xct, share);
            for (slot_idx, weight) in weights.into_iter().enumerate() {
                if !xp.fallback {
                    protos.push(ProtoSlot {
                        xct,
                        slot_idx,
                        weight,
                    });
                }
            }
            plan.per_type.insert(xct, xp);
        }

        // Phase 2: frequency-proportional replica counts per type. While a
        // type's batch is in flight its slots are the machine's pipeline
        // stages, so each slot gets cores proportional to its share of the
        // type's work (the paper's ten-core example, generalized): replicas
        // sum to n_cores per type. Without replication every slot gets one
        // core (the simplified Algorithm 2).
        let mut placements: Vec<(XctTypeId, usize, f64)> = Vec::new(); // (type, slot, per-replica weight)
        let mut by_type: HashMap<XctTypeId, Vec<&ProtoSlot>> = HashMap::new();
        for p in &protos {
            by_type.entry(p.xct).or_default().push(p);
        }
        let mut types: Vec<XctTypeId> = by_type.keys().copied().collect();
        types.sort_unstable();
        for xct in types {
            let slots = &by_type[&xct];
            let total_w: f64 = slots.iter().map(|p| p.weight).sum::<f64>().max(1e-9);
            let mut replicas: Vec<usize> = if self.cfg.replicate {
                slots
                    .iter()
                    .map(|p| {
                        ((p.weight / total_w * self.cfg.n_cores as f64).floor() as usize).max(1)
                    })
                    .collect()
            } else {
                vec![1; slots.len()]
            };
            // The minimum-one bump can overshoot on tiny machines: shed
            // replicas from the most-replicated slots until the type fits.
            if self.cfg.replicate {
                let mut assigned: usize = replicas.iter().sum();
                while assigned > self.cfg.n_cores {
                    let i = (0..slots.len())
                        .filter(|&i| replicas[i] > 1)
                        .max_by_key(|&i| replicas[i])
                        .expect("some slot has spare replicas");
                    replicas[i] -= 1;
                    assigned -= 1;
                }
            }
            // Largest-remainder distribution of leftover cores; ties favor
            // slots with fewer replicas (the paper hands its leftover to
            // update's entry rather than tripling probe's).
            if self.cfg.replicate {
                let mut assigned: usize = replicas.iter().sum();
                while assigned < self.cfg.n_cores {
                    let i = (0..slots.len())
                        .max_by(|&a, &b| {
                            let ra = slots[a].weight / replicas[a] as f64;
                            let rb = slots[b].weight / replicas[b] as f64;
                            ra.partial_cmp(&rb)
                                .expect("finite")
                                .then_with(|| replicas[b].cmp(&replicas[a]))
                                .then_with(|| slots[b].slot_idx.cmp(&slots[a].slot_idx))
                        })
                        .expect("non-empty");
                    replicas[i] += 1;
                    assigned += 1;
                }
            }
            for (p, n) in slots.iter().zip(&replicas) {
                for _ in 0..*n {
                    placements.push((p.xct, p.slot_idx, p.weight / *n as f64));
                }
            }
        }

        // Phase 3: weighted LPT packing of every replica onto physical
        // cores, balanced *per type*: batches run one type at a time, so
        // each type's batch has the whole machine to itself and its slots
        // must spread over all cores. Cross-type overlap on a core is
        // time-separated by batching (the paper's "non-overlapping
        // footprint must first be loaded by the first few transactions" at
        // batch switches). A slot's replicas land on distinct cores.
        placements.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite")
                .then_with(|| a.0.cmp(&b.0))
                .then_with(|| a.1.cmp(&b.1))
        });
        let mut type_load: HashMap<XctTypeId, Vec<f64>> = HashMap::new();
        for (xct, slot_idx, w) in placements {
            let core_load = type_load
                .entry(xct)
                .or_insert_with(|| vec![0.0; self.cfg.n_cores]);
            let taken: &[usize] = &plan.per_type[&xct].slots[slot_idx].cores;
            let core = (0..self.cfg.n_cores)
                .filter(|c| !taken.contains(c))
                .min_by(|&a, &b| core_load[a].partial_cmp(&core_load[b]).expect("finite"))
                .unwrap_or_else(|| {
                    (0..self.cfg.n_cores)
                        .min_by(|&a, &b| core_load[a].partial_cmp(&core_load[b]).expect("finite"))
                        .expect("cores > 0")
                });
            core_load[core] += w.max(1e-6);
            plan.per_type
                .get_mut(&xct)
                .expect("type inserted in phase 1")
                .slots[slot_idx]
                .cores
                .push(core);
        }

        plan
    }

    /// Build one type's slot skeleton and per-slot weights (Algorithm 2
    /// lines 1-14 plus the scarcity trimming of Section 3.2.3).
    fn skeleton(&self, xct: XctTypeId, share: f64) -> (XctPlan, Vec<f64>) {
        let map = self.map;
        let ops = map.ops_of(xct);

        // How many migration points each op keeps.
        let mut kept: HashMap<OpKind, usize> = ops
            .iter()
            .map(|&op| (op, map.points(xct, op).map_or(0, Vec::len)))
            .collect();
        let needed = |kept: &HashMap<OpKind, usize>| 1 + ops.len() + kept.values().sum::<usize>();

        if needed(&kept) > self.cfg.n_cores {
            // Drop internal points: least frequent op first, last point
            // first.
            let mut by_freq = ops.clone();
            by_freq.sort_by_key(|&op| map.frequency(xct, op));
            'trim: loop {
                let mut dropped_any = false;
                for &op in &by_freq {
                    if needed(&kept) <= self.cfg.n_cores {
                        break 'trim;
                    }
                    let k = kept.get_mut(&op).expect("op present");
                    if *k > 0 {
                        *k -= 1;
                        dropped_any = true;
                    }
                }
                if needed(&kept) <= self.cfg.n_cores || !dropped_any {
                    break;
                }
            }
        }
        if needed(&kept) > self.cfg.n_cores {
            return (
                XctPlan {
                    entry_slot: 0,
                    ops: HashMap::new(),
                    slots: vec![Slot {
                        cores: (0..self.cfg.n_cores).collect(),
                    }],
                    fallback: true,
                },
                Vec::new(),
            );
        }

        let mut slots = Vec::new();
        let mut weights = Vec::new();
        let new_slot = |slots: &mut Vec<Slot>, weights: &mut Vec<f64>, w: f64| {
            let id = slots.len();
            slots.push(Slot::default());
            weights.push(w);
            id
        };
        // Slot weights are the *work share* each slot serves: an
        // operation's profiled instructions spread over its slots (the
        // points split the op at L1-I-capacity boundaries, so actions are
        // near-equal), scaled by the type's share of the mix. The
        // transaction entry serves the begin/commit wrapper.
        let entry_slot = new_slot(
            &mut slots,
            &mut weights,
            share * map.wrapper_instructions(xct) as f64,
        );
        let mut op_plans = HashMap::new();
        for &op in &ops {
            let n_op_slots = 1 + kept[&op];
            let w = share * map.op_instructions(xct, op) as f64 / n_op_slots as f64;
            let op_entry = new_slot(&mut slots, &mut weights, w);
            let mut points = Vec::new();
            if let Some(seq) = map.points(xct, op) {
                for &addr in seq.iter().take(kept[&op]) {
                    let slot = new_slot(&mut slots, &mut weights, w);
                    points.push(PlannedPoint { addr, slot });
                }
            }
            op_plans.insert(
                op,
                OpPlan {
                    op,
                    entry_slot: op_entry,
                    points,
                },
            );
        }
        (
            XctPlan {
                entry_slot,
                ops: op_plans,
                slots,
                fallback: false,
            },
            weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::find_migration_points;
    use addict_sim::CacheGeometry;
    use addict_trace::{TraceEvent, XctTrace};

    /// Build a MigrationMap resembling the paper's Section 3.1.2 example:
    /// probe with 2 points (frequency 10), update with 1 point
    /// (frequency 5).
    fn example_map() -> MigrationMap {
        let tiny = CacheGeometry::new(8 * 64, 2); // 8-block window
        let mut traces = Vec::new();
        for i in 0..10 {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(2),
            }];
            events.push(TraceEvent::OpBegin { op: OpKind::Probe });
            // 20 blocks -> 2 overflow points.
            events.push(TraceEvent::Instr {
                block: BlockAddr(0x98560),
                n_blocks: 20,
                ipb: 10,
            });
            events.push(TraceEvent::OpEnd { op: OpKind::Probe });
            if i < 5 {
                events.push(TraceEvent::OpBegin { op: OpKind::Update });
                // 12 blocks -> 1 overflow point.
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x95570),
                    n_blocks: 12,
                    ipb: 10,
                });
                events.push(TraceEvent::OpEnd { op: OpKind::Update });
            }
            events.push(TraceEvent::XctEnd);
            traces.push(XctTrace {
                xct_type: XctTypeId(2),
                events,
            });
        }
        find_migration_points(&traces, tiny)
    }

    #[test]
    fn exact_fit_assigns_one_core_per_slot() {
        let map = example_map();
        // Slots: xct entry + probe entry + 2 + update entry + 1 = 6.
        let plan = AssignmentPlan::build(&map, PlanConfig::new(6));
        let xp = plan.of(XctTypeId(2)).unwrap();
        assert!(!xp.fallback);
        assert_eq!(xp.slots.len(), 6);
        assert!(xp.slots.iter().all(|s| s.cores.len() == 1));
        // All cores distinct, covering 0..6.
        let mut cores: Vec<usize> = xp
            .slots
            .iter()
            .flat_map(|s| s.cores.iter().copied())
            .collect();
        cores.sort_unstable();
        assert_eq!(cores, (0..6).collect::<Vec<_>>());
        assert_eq!(xp.n_points(), 3);
    }

    #[test]
    fn scarce_cores_drop_points_of_infrequent_ops_first() {
        // Section 3.2.3: with 4 cores, update's point goes first (freq 5 <
        // 10), then probe's LAST point.
        let map = example_map();
        let plan = AssignmentPlan::build(&map, PlanConfig::new(4));
        let xp = plan.of(XctTypeId(2)).unwrap();
        assert!(!xp.fallback);
        assert_eq!(xp.slots.len(), 4);
        let update = &xp.ops[&OpKind::Update];
        assert!(update.points.is_empty(), "update's internal point dropped");
        let probe = &xp.ops[&OpKind::Probe];
        assert_eq!(probe.points.len(), 1, "probe keeps only its first point");
        let full = map.points(XctTypeId(2), OpKind::Probe).unwrap();
        assert_eq!(
            probe.points[0].addr, full[0],
            "the LAST point is the dropped one"
        );
    }

    #[test]
    fn plentiful_cores_replicate_frequent_ops_first() {
        // Section 3.2.3's ten-core example: probe (twice update's work)
        // gets its slots replicated ahead of update's, and every core is
        // put to use.
        let map = example_map();
        let plan = AssignmentPlan::build(&map, PlanConfig::new(10));
        let xp = plan.of(XctTypeId(2)).unwrap();
        let probe = &xp.ops[&OpKind::Probe];
        let update = &xp.ops[&OpKind::Update];
        // Every probe slot is at least double-provisioned...
        assert!(xp.slots[probe.entry_slot].cores.len() >= 2);
        for p in &probe.points {
            assert!(xp.slots[p.slot].cores.len() >= 2);
        }
        // ...and no update slot gets more cores than a probe slot.
        let probe_min = std::iter::once(probe.entry_slot)
            .chain(probe.points.iter().map(|p| p.slot))
            .map(|s| xp.slots[s].cores.len())
            .min()
            .unwrap();
        let update_max = std::iter::once(update.entry_slot)
            .chain(update.points.iter().map(|p| p.slot))
            .map(|s| xp.slots[s].cores.len())
            .max()
            .unwrap();
        assert!(update_max <= probe_min + 1, "update over-provisioned");
        // Every core used exactly once.
        let total: usize = xp.slots.iter().map(|s| s.cores.len()).sum();
        assert_eq!(total, 10);
        // A slot's replicas land on distinct cores.
        for s in &xp.slots {
            let mut c = s.cores.clone();
            c.dedup();
            assert_eq!(c.len(), s.cores.len());
        }
    }

    #[test]
    fn too_few_cores_falls_back() {
        let map = example_map();
        // 1 xct entry + 2 op entries = 3 minimum; 2 cores cannot fit.
        let plan = AssignmentPlan::build(&map, PlanConfig::new(2));
        let xp = plan.of(XctTypeId(2)).unwrap();
        assert!(xp.fallback);
    }

    #[test]
    fn replication_disabled_leaves_spares_idle() {
        let map = example_map();
        let plan = AssignmentPlan::build(
            &map,
            PlanConfig {
                n_cores: 10,
                replicate: false,
            },
        );
        let xp = plan.of(XctTypeId(2)).unwrap();
        assert!(xp.slots.iter().all(|s| s.cores.len() == 1));
        assert_eq!(xp.slots.len(), 6);
    }

    /// Two types with equal slot demand: cross-type placement must spread
    /// both types' slots over all cores rather than stacking them on the
    /// same low core ids.
    #[test]
    fn cross_type_slots_spread_over_all_cores() {
        let tiny = CacheGeometry::new(8 * 64, 2);
        let mut traces = Vec::new();
        for ty in [0u16, 1] {
            for _ in 0..10 {
                let mut events = vec![TraceEvent::XctBegin {
                    xct_type: XctTypeId(ty),
                }];
                events.push(TraceEvent::OpBegin { op: OpKind::Probe });
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x10000 + u64::from(ty) * 0x1000),
                    n_blocks: 20,
                    ipb: 10,
                });
                events.push(TraceEvent::OpEnd { op: OpKind::Probe });
                events.push(TraceEvent::XctEnd);
                traces.push(XctTrace {
                    xct_type: XctTypeId(ty),
                    events,
                });
            }
        }
        let map = find_migration_points(&traces, tiny);
        // Each type: 1 entry + 1 op entry + 2 points = 4 slots; 8 cores
        // fit both types exactly.
        let plan = AssignmentPlan::build(&map, PlanConfig::new(8));
        let mut used: Vec<usize> = Vec::new();
        for ty in [XctTypeId(0), XctTypeId(1)] {
            let xp = plan.of(ty).unwrap();
            assert!(!xp.fallback);
            used.extend(xp.slots.iter().flat_map(|s| s.cores.iter().copied()));
        }
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 8, "both types' slots must cover all 8 cores");
    }
}
