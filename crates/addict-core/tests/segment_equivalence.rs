//! Segment-granular replay must be *observationally identical* to the
//! per-block flat path: byte-identical `MachineStats`, makespan, and
//! per-transaction latencies for all four schedulers — on generated
//! transaction mixes and on a real (small) TPC-C trace set.
//!
//! The engine guarantees bit-equality (not approximate equality): the fast
//! path accumulates per-block `f64` charges in the same order as the flat
//! path, so even floating-point totals match exactly. Any divergence is a
//! bug in the segment engine, not rounding.

use addict_core::algorithm1::find_migration_points;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::{BlockAddr, SimConfig};
use addict_trace::{OpKind, TraceEvent, XctTrace, XctTypeId};
use addict_workloads::{collect_traces, Benchmark};
use proptest::prelude::*;

/// Run one scheduler in both modes and assert bit-identical output.
fn assert_equivalent(kind: SchedulerKind, traces: &[XctTrace], cfg: &ReplayConfig) {
    let map = find_migration_points(traces, cfg.sim.l1i);
    let run = |segment: bool| -> ReplayResult {
        let cfg = ReplayConfig {
            segment_exec: segment,
            ..cfg.clone()
        };
        run_scheduler(kind, traces, Some(&map), &cfg)
    };
    let flat = run(false);
    let seg = run(true);

    assert_eq!(seg.stats, flat.stats, "{kind:?}: MachineStats diverged");
    assert_eq!(
        seg.total_cycles.to_bits(),
        flat.total_cycles.to_bits(),
        "{kind:?}: makespan diverged ({} vs {})",
        seg.total_cycles,
        flat.total_cycles
    );
    assert_eq!(
        seg.avg_latency_cycles.to_bits(),
        flat.avg_latency_cycles.to_bits(),
        "{kind:?}: mean latency diverged"
    );
    assert_eq!(seg.latencies.len(), flat.latencies.len());
    for (i, (s, f)) in seg.latencies.iter().zip(&flat.latencies).enumerate() {
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "{kind:?}: latency of transaction {i} diverged ({s} vs {f})"
        );
    }
    assert_eq!(seg.power, flat.power, "{kind:?}: power report diverged");
    assert_eq!(seg.instructions, flat.instructions);
}

/// A transaction with multi-block instruction runs interleaved with data
/// touches — the shape that exercises run splitting, watched blocks, and
/// mid-run yields/migrations.
fn arb_trace() -> impl Strategy<Value = XctTrace> {
    let op = prop_oneof![
        Just(OpKind::Probe),
        Just(OpKind::Scan),
        Just(OpKind::Update),
        Just(OpKind::Insert),
    ];
    (
        0u16..3,
        prop::collection::vec((op, 1u16..80, 0u64..4, 0u8..3), 1..6),
    )
        .prop_map(|(ty, ops)| {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(ty),
            }];
            for (kind, blocks, base_sel, data) in ops {
                events.push(TraceEvent::OpBegin { op: kind });
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x1000 + base_sel * 0x90),
                    n_blocks: blocks,
                    ipb: 8,
                });
                for d in 0..u64::from(data) {
                    events.push(TraceEvent::Data {
                        block: BlockAddr(0x100_000 + u64::from(ty) * 8 + d),
                        write: d % 2 == 0,
                    });
                }
                events.push(TraceEvent::OpEnd { op: kind });
            }
            events.push(TraceEvent::XctEnd);
            XctTrace {
                xct_type: XctTypeId(ty),
                events,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat/segment equivalence on generated mixes, all four schedulers,
    /// varying core counts and batch sizes.
    #[test]
    fn segment_replay_is_bit_identical(
        traces in prop::collection::vec(arb_trace(), 1..16),
        cores in 2usize..8,
    ) {
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(cores);
        for kind in SchedulerKind::ALL {
            assert_equivalent(kind, &traces, &cfg);
        }
    }

    /// Same equivalence with the next-line L1-I prefetcher enabled (the
    /// machine's per-block fallback inside the segment engine).
    #[test]
    fn segment_replay_matches_with_prefetcher(
        traces in prop::collection::vec(arb_trace(), 1..8),
    ) {
        let mut sim = SimConfig::paper_default().with_cores(4);
        sim.l1i_next_line_prefetch = true;
        let cfg = ReplayConfig { sim, ..ReplayConfig::paper_default() }.with_batch_size(4);
        for kind in SchedulerKind::ALL {
            assert_equivalent(kind, &traces, &cfg);
        }
    }
}

/// The satellite's headline case: a real TPC-C trace set through the full
/// pipeline, equivalent under every scheduler.
#[test]
fn tpcc_segment_replay_is_bit_identical() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let eval = collect_traces(&mut engine, workload.as_mut(), 48, 2);
    let cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(8),
        ..ReplayConfig::paper_default()
    }
    .with_batch_size(8);
    for kind in SchedulerKind::ALL {
        assert_equivalent(kind, &eval.xcts, &cfg);
    }
}

/// Replays are reproducible run to run (deterministic `earliest_of`
/// tie-breaking): same inputs, same bits.
#[test]
fn replay_is_deterministic_across_runs() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let eval = collect_traces(&mut engine, workload.as_mut(), 32, 2);
    let cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(6),
        ..ReplayConfig::paper_default()
    }
    .with_batch_size(6);
    let map = find_migration_points(&eval.xcts, cfg.sim.l1i);
    for kind in SchedulerKind::ALL {
        let a = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        let b = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        assert_eq!(a.stats, b.stats, "{kind:?} not reproducible");
        assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.latencies), bits(&b.latencies));
    }
}
