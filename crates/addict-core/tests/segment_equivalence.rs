//! Fast-path replay must be *observationally identical* to the per-block,
//! per-event reference path: byte-identical `MachineStats`, makespan, and
//! per-transaction latencies for all five schedulers — on generated
//! transaction mixes and, via the full matrix gate below, on real trace
//! sets from **every registry benchmark**, in **both storage layouts**
//! (flat and interned), with segment-granular instruction execution and
//! run-granular data execution toggled independently.
//!
//! The engine guarantees bit-equality (not approximate equality): the fast
//! paths accumulate per-block `f64` charges in the same order as the
//! reference path (data-run hits charge a bitwise +0.0, exactly what the
//! per-event path adds), so even floating-point totals match exactly. Any
//! divergence is a bug in a fast path, not rounding.

use addict_core::algorithm1::find_migration_points;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::{BlockAddr, SimConfig};
use addict_trace::{InternedWorkload, OpKind, TraceEvent, XctTrace, XctTypeId};
use addict_workloads::{collect_traces, Benchmark};
use proptest::prelude::*;

/// The four execution-mode combinations: (segment_exec, data_run_exec).
/// `(false, false)` is the reference per-block, per-event path.
const MODES: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

fn with_modes(cfg: &ReplayConfig, segment: bool, data_run: bool) -> ReplayConfig {
    ReplayConfig {
        segment_exec: segment,
        data_run_exec: data_run,
        ..cfg.clone()
    }
}

/// Assert two replays are bit-identical in every observable field.
fn assert_identical(fast: &ReplayResult, reference: &ReplayResult, what: &str) {
    assert_eq!(fast.stats, reference.stats, "{what}: MachineStats diverged");
    assert_eq!(
        fast.total_cycles.to_bits(),
        reference.total_cycles.to_bits(),
        "{what}: makespan diverged ({} vs {})",
        fast.total_cycles,
        reference.total_cycles
    );
    assert_eq!(
        fast.avg_latency_cycles.to_bits(),
        reference.avg_latency_cycles.to_bits(),
        "{what}: mean latency diverged"
    );
    assert_eq!(fast.latencies.len(), reference.latencies.len());
    for (i, (s, f)) in fast.latencies.iter().zip(&reference.latencies).enumerate() {
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "{what}: latency of transaction {i} diverged ({s} vs {f})"
        );
    }
    assert_eq!(fast.power, reference.power, "{what}: power report diverged");
    assert_eq!(fast.instructions, reference.instructions);
}

/// Run one scheduler in all four mode combinations and assert every fast
/// combination reproduces the reference path bit-for-bit.
fn assert_equivalent(kind: SchedulerKind, traces: &[XctTrace], cfg: &ReplayConfig) {
    let map = find_migration_points(traces, cfg.sim.l1i);
    let run = |(segment, data_run): (bool, bool)| -> ReplayResult {
        run_scheduler(
            kind,
            traces,
            Some(&map),
            &with_modes(cfg, segment, data_run),
        )
    };
    let reference = run(MODES[0]);
    for mode in &MODES[1..] {
        let fast = run(*mode);
        assert_identical(
            &fast,
            &reference,
            &format!("{kind:?} (segment={}, data_run={})", mode.0, mode.1),
        );
    }
}

/// A transaction with multi-block instruction runs interleaved with data
/// touches — the shape that exercises run splitting, watched blocks, and
/// mid-run yields/migrations.
fn arb_trace() -> impl Strategy<Value = XctTrace> {
    let op = prop_oneof![
        Just(OpKind::Probe),
        Just(OpKind::Scan),
        Just(OpKind::Update),
        Just(OpKind::Insert),
    ];
    (
        0u16..3,
        prop::collection::vec((op, 1u16..80, 0u64..4, 0u8..7), 1..6),
    )
        .prop_map(|(ty, ops)| {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(ty),
            }];
            for (kind, blocks, base_sel, data) in ops {
                events.push(TraceEvent::OpBegin { op: kind });
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x1000 + base_sel * 0x90),
                    n_blocks: blocks,
                    ipb: 8,
                });
                // Consecutive data events form runs; the `ty % 2` overlap
                // makes different types write the same blocks, so runs hit
                // shared/upgraded blocks mid-stream on multicore replays.
                for d in 0..u64::from(data) {
                    events.push(TraceEvent::Data {
                        block: BlockAddr(0x100_000 + u64::from(ty % 2) * 4 + d),
                        write: d % 2 == 0,
                    });
                }
                events.push(TraceEvent::OpEnd { op: kind });
            }
            events.push(TraceEvent::XctEnd);
            XctTrace {
                xct_type: XctTypeId(ty),
                events,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat/segment equivalence on generated mixes, all five schedulers,
    /// varying core counts and batch sizes.
    #[test]
    fn segment_replay_is_bit_identical(
        traces in prop::collection::vec(arb_trace(), 1..16),
        cores in 2usize..8,
    ) {
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(cores);
        for kind in SchedulerKind::ALL {
            assert_equivalent(kind, &traces, &cfg);
        }
    }

    /// Same equivalence with the next-line L1-I prefetcher enabled (the
    /// machine's per-block fallback inside the segment engine).
    #[test]
    fn segment_replay_matches_with_prefetcher(
        traces in prop::collection::vec(arb_trace(), 1..8),
    ) {
        let mut sim = SimConfig::paper_default().with_cores(4);
        sim.l1i_next_line_prefetch = true;
        let cfg = ReplayConfig { sim, ..ReplayConfig::paper_default() }.with_batch_size(4);
        for kind in SchedulerKind::ALL {
            assert_equivalent(kind, &traces, &cfg);
        }
    }
}

/// The satellite's headline case: a real TPC-C trace set through the full
/// pipeline, equivalent under every scheduler.
#[test]
fn tpcc_segment_replay_is_bit_identical() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let eval = collect_traces(&mut engine, workload.as_mut(), 48, 2);
    let cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(8),
        ..ReplayConfig::paper_default()
    }
    .with_batch_size(8);
    for kind in SchedulerKind::ALL {
        assert_equivalent(kind, &eval.xcts, &cfg);
    }
}

/// Canonical byte form of a replay outcome: `Debug` covers every field and
/// renders `f64` shortest-roundtrip, so byte equality is bit equality.
fn serialize(r: &ReplayResult) -> Vec<u8> {
    format!("{r:#?}").into_bytes()
}

/// The full matrix gate: every scheduler × every registry benchmark ×
/// both storage layouts × data runs on/off (with segment execution on, the
/// production configuration) produces `ReplayResult`s byte-identical to
/// the per-block, per-event reference — and the data-access count is
/// single-sourced: `MachineStats::data_accesses` equals the traces' own
/// `Data`-event count on every path, so a miscounted run length can never
/// silently skew `l1d_mpki`.
#[test]
fn data_run_matrix_is_byte_identical_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let (mut engine, mut workload) = bench.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 24, 1);
        let eval = collect_traces(&mut engine, workload.as_mut(), 24, 2);
        let interned = InternedWorkload::from_flat(&eval);
        let iset = interned.as_set();
        let trace_data_events: u64 = eval.xcts.iter().map(XctTrace::data_accesses).sum();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(8),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(8);
        let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
        for kind in SchedulerKind::ALL {
            let reference = run_scheduler(
                kind,
                &eval.xcts,
                Some(&map),
                &with_modes(&cfg, false, false),
            );
            let reference_bytes = serialize(&reference);
            assert_eq!(
                reference.stats.data_accesses(),
                trace_data_events,
                "{kind:?} on {}: reference path lost/duplicated data accesses",
                bench.name()
            );
            for (segment, data_run) in [(true, false), (true, true), (false, true)] {
                let modes = with_modes(&cfg, segment, data_run);
                let flat = run_scheduler(kind, &eval.xcts, Some(&map), &modes);
                assert_eq!(
                    serialize(&flat),
                    reference_bytes,
                    "{kind:?} on {} (flat, segment={segment}, data_run={data_run}) diverged",
                    bench.name()
                );
                let int = run_scheduler(kind, &iset, Some(&map), &modes);
                assert_eq!(
                    serialize(&int),
                    reference_bytes,
                    "{kind:?} on {} (interned, segment={segment}, data_run={data_run}) diverged",
                    bench.name()
                );
                // Stats single-source guard, both layouts, every mode.
                assert_eq!(flat.stats.data_accesses(), trace_data_events);
                assert_eq!(int.stats.data_accesses(), trace_data_events);
            }
        }
    }
}

/// Replays are reproducible run to run (deterministic `earliest_of`
/// tie-breaking): same inputs, same bits.
#[test]
fn replay_is_deterministic_across_runs() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let eval = collect_traces(&mut engine, workload.as_mut(), 32, 2);
    let cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(6),
        ..ReplayConfig::paper_default()
    }
    .with_batch_size(6);
    let map = find_migration_points(&eval.xcts, cfg.sim.l1i);
    for kind in SchedulerKind::ALL {
        let a = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        let b = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        assert_eq!(a.stats, b.stats, "{kind:?} not reproducible");
        assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.latencies), bits(&b.latencies));
    }
}
