//! Interned replay must be *observationally identical* to flat replay:
//! byte-identical serialized `ReplayResult`s — `MachineStats`, makespan,
//! per-transaction latencies, power — for all five schedulers on real
//! trace sets from **every registry benchmark** (the TPC trio plus the
//! spec-driven TATP and YCSB mixes), in both the segment-granular and the
//! per-block execution mode. The interned form may change memory layout, never a
//! single simulated bit (the operational-equivalence obligation the
//! refactor carries, in the style of `segment_equivalence.rs`).

use addict_core::algorithm1::{find_migration_points, find_migration_points_interned};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::SimConfig;
use addict_trace::{InternedWorkload, SlicePool, TraceSet, WorkloadTrace};
use addict_workloads::{collect_traces, collect_traces_interned, Benchmark};

/// Canonical byte form of a replay outcome: `Debug` covers every field and
/// renders `f64` shortest-roundtrip, so byte equality is bit equality.
fn serialize(r: &ReplayResult) -> Vec<u8> {
    format!("{r:#?}").into_bytes()
}

fn small_eval(bench: Benchmark, n: usize) -> (WorkloadTrace, WorkloadTrace) {
    let (mut engine, mut workload) = bench.setup_small();
    let profile = collect_traces(&mut engine, workload.as_mut(), n, 1);
    let eval = collect_traces(&mut engine, workload.as_mut(), n, 2);
    (profile, eval)
}

/// The headline equivalence: every scheduler, every benchmark, interned
/// replay produces byte-identical serialized results.
#[test]
fn interned_replay_is_byte_identical_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let (profile, eval) = small_eval(bench, 32);
        let interned = InternedWorkload::from_flat(&eval);
        let iset = interned.as_set();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(8),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(8);
        let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
        for kind in SchedulerKind::ALL {
            let flat = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
            let int = run_scheduler(kind, &iset, Some(&map), &cfg);
            assert_eq!(
                serialize(&flat),
                serialize(&int),
                "{kind:?} on {} diverged under interned replay",
                bench.name()
            );
        }
    }
}

/// The per-block execution path (segment_exec off) is equivalent too —
/// interning must not depend on the segment fast path for correctness.
#[test]
fn interned_per_block_path_is_byte_identical() {
    let (profile, eval) = small_eval(Benchmark::TpcC, 24);
    let interned = InternedWorkload::from_flat(&eval);
    let iset = interned.as_set();
    let cfg = ReplayConfig {
        segment_exec: false,
        ..ReplayConfig::paper_default()
    };
    let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
    for kind in SchedulerKind::ALL {
        let flat = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        let int = run_scheduler(kind, &iset, Some(&map), &cfg);
        assert_eq!(serialize(&flat), serialize(&int), "{kind:?} diverged");
    }
}

/// Interning while collecting (the at-scale path that never materializes
/// the flat set) produces the identical interned form — same traces, same
/// order, same pool layout — as collecting flat and interning after.
#[test]
fn collect_interned_matches_collect_then_intern() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let mut pool = SlicePool::new();
    let streamed = collect_traces_interned(&mut engine, workload.as_mut(), 24, 7, &mut pool);

    let (mut engine2, mut workload2) = Benchmark::TpcC.setup_small();
    let flat = collect_traces(&mut engine2, workload2.as_mut(), 24, 7);
    let batch = InternedWorkload::from_flat(&flat);

    assert_eq!(streamed.len(), batch.xcts.len());
    for (a, b) in streamed.iter().zip(&batch.xcts) {
        assert_eq!(a, b, "streamed interning diverged from batch interning");
    }
    assert_eq!(pool.n_events(), batch.pool.n_events());
    assert_eq!(pool.unique_slices(), batch.pool.unique_slices());
    assert_eq!(pool.slices_interned(), batch.pool.slices_interned());
}

/// Algorithm 1 over interned profiling traces chooses the same migration
/// points, frequencies, and instruction tallies as over flat ones.
#[test]
fn interned_profiling_finds_identical_migration_points() {
    let (profile, _) = small_eval(Benchmark::TpcC, 32);
    let interned = InternedWorkload::from_flat(&profile);
    let l1i = ReplayConfig::paper_default().sim.l1i;
    let flat_map = find_migration_points(&profile.xcts, l1i);
    let int_map = find_migration_points_interned(interned.as_set(), l1i);
    assert_eq!(flat_map.xct_types(), int_map.xct_types());
    for ty in flat_map.xct_types() {
        assert_eq!(flat_map.type_frequency(ty), int_map.type_frequency(ty));
        assert_eq!(
            flat_map.wrapper_instructions(ty),
            int_map.wrapper_instructions(ty)
        );
        assert_eq!(flat_map.ops_of(ty), int_map.ops_of(ty));
        for op in flat_map.ops_of(ty) {
            assert_eq!(
                flat_map.points(ty, op),
                int_map.points(ty, op),
                "{ty:?}/{op:?}"
            );
            assert_eq!(flat_map.frequency(ty, op), int_map.frequency(ty, op));
            assert_eq!(
                flat_map.op_instructions(ty, op),
                int_map.op_instructions(ty, op)
            );
        }
    }
}

/// The TraceSet metadata the schedulers consume (type ids for batching,
/// instruction counts for STREX's load balancer) agrees across layouts.
#[test]
fn interned_metadata_matches_flat() {
    let (_, eval) = small_eval(Benchmark::TpcE, 24);
    let interned = InternedWorkload::from_flat(&eval);
    let iset = interned.as_set();
    assert_eq!(TraceSet::len(&iset), eval.xcts.len());
    for i in 0..eval.xcts.len() {
        assert_eq!(TraceSet::xct_type(&iset, i), eval.xcts[i].xct_type);
        assert_eq!(
            TraceSet::instructions_of(&iset, i),
            eval.xcts[i].instructions()
        );
    }
}
