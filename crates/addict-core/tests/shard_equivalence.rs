//! Sharded replay must be *observationally identical* to serial replay:
//! byte-identical serialized `ReplayResult`s — `MachineStats`, makespan,
//! per-transaction latencies, power, speculation counters — whether one
//! simulation's trace decoding runs on the merge thread (`shards = 1`) or
//! is sharded across worker threads (`shards = 2, 4`). The shard layer
//! moves *decoding* off-thread, never the discrete-event merge, so any
//! divergence is a bug in the decoded-packet view, not a tolerated race.
//!
//! Same obligation for the banked coherence directory: partitioning the
//! block-address space across per-bank tables may never change a single
//! coherence action, sharer set, or owner relative to the monolithic
//! directory.

use addict_core::algorithm1::find_migration_points;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::coherence::Directory;
use addict_sim::{BlockAddr, SimConfig};
use addict_trace::{InternedWorkload, OpKind, TraceEvent, XctTrace, XctTypeId};
use addict_workloads::{collect_traces, Benchmark};
use proptest::prelude::*;

/// Canonical byte form of a replay outcome: `Debug` covers every field and
/// renders `f64` shortest-roundtrip, so byte equality is bit equality.
fn serialize(r: &ReplayResult) -> Vec<u8> {
    format!("{r:#?}").into_bytes()
}

/// Run one scheduler at 1, 2, and 4 shards and assert every sharded
/// replay serializes byte-identically to the serial one.
fn assert_shard_equivalent(kind: SchedulerKind, traces: &[XctTrace], cfg: &ReplayConfig) {
    let map = find_migration_points(traces, cfg.sim.l1i);
    let run = |shards: usize| -> Vec<u8> {
        let cfg = cfg.clone().with_shards(shards);
        serialize(&run_scheduler(kind, traces, Some(&map), &cfg))
    };
    let serial = run(1);
    for shards in [2usize, 4] {
        assert_eq!(run(shards), serial, "{kind:?} diverged at {shards} shards");
    }
}

/// A transaction with multi-block instruction runs interleaved with data
/// runs — the shape that exercises decoded `Run` packet splitting at
/// watched blocks, mid-run yields, and partial data-run consumption.
fn arb_trace() -> impl Strategy<Value = XctTrace> {
    let op = prop_oneof![
        Just(OpKind::Probe),
        Just(OpKind::Scan),
        Just(OpKind::Update),
        Just(OpKind::Insert),
    ];
    (
        0u16..3,
        prop::collection::vec((op, 1u16..80, 0u64..4, 0u8..7), 1..6),
    )
        .prop_map(|(ty, ops)| {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(ty),
            }];
            for (kind, blocks, base_sel, data) in ops {
                events.push(TraceEvent::OpBegin { op: kind });
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x1000 + base_sel * 0x90),
                    n_blocks: blocks,
                    ipb: 8,
                });
                // The `ty % 2` overlap makes different types write the
                // same blocks, so shards race decode against traces whose
                // replays conflict in the directory.
                for d in 0..u64::from(data) {
                    events.push(TraceEvent::Data {
                        block: BlockAddr(0x100_000 + u64::from(ty % 2) * 4 + d),
                        write: d % 2 == 0,
                    });
                }
                events.push(TraceEvent::OpEnd { op: kind });
            }
            events.push(TraceEvent::XctEnd);
            XctTrace {
                xct_type: XctTypeId(ty),
                events,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: 1-, 2-, and 4-shard replays of generated
    /// mixes are byte-identical for all five schedulers across core
    /// counts and batch sizes.
    #[test]
    fn sharded_replay_is_byte_identical(
        traces in prop::collection::vec(arb_trace(), 1..16),
        cores in 2usize..8,
    ) {
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(cores);
        for kind in SchedulerKind::ALL {
            assert_shard_equivalent(kind, &traces, &cfg);
        }
    }

    /// The banked directory is a shadow model of the monolithic one:
    /// random read/write/evict/peek storms observe identical coherence
    /// actions, sharer sets, owners, and tracked-block counts at every
    /// bank count — including non-power-of-two banking.
    #[test]
    fn banked_directory_shadows_monolithic(
        ops in prop::collection::vec((0u64..512, 0usize..8, 0u8..5), 1..400),
    ) {
        let mut mono = Directory::new();
        let mut banked = [
            Directory::with_shards(2),
            Directory::with_shards(3),
            Directory::with_shards(16),
        ];
        for (blk, core, op) in ops {
            let block = BlockAddr(blk * 64);
            for b in banked.iter_mut() {
                match op {
                    0 | 1 => assert_eq!(b.on_read(core, block), mono.peek_read(core, block)),
                    2 => assert_eq!(b.on_write(core, block), mono.peek_write(core, block)),
                    3 => b.on_evict(core, block),
                    _ => {
                        assert_eq!(b.peek_read(core, block), mono.peek_read(core, block));
                        assert_eq!(b.peek_write(core, block), mono.peek_write(core, block));
                    }
                }
            }
            match op {
                0 | 1 => {
                    mono.on_read(core, block);
                }
                2 => {
                    mono.on_write(core, block);
                }
                3 => mono.on_evict(core, block),
                _ => {}
            }
            for b in banked.iter() {
                assert_eq!(b.is_sharer(core, block), mono.is_sharer(core, block));
                assert_eq!(b.owner(block), mono.owner(block));
                assert_eq!(b.tracked_blocks(), mono.tracked_blocks());
            }
        }
    }
}

/// The full matrix gate: every scheduler × every registry benchmark ×
/// both storage layouts, sharded replays byte-identical to serial.
#[test]
fn shard_matrix_is_byte_identical_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let (mut engine, mut workload) = bench.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 24, 1);
        let eval = collect_traces(&mut engine, workload.as_mut(), 24, 2);
        let interned = InternedWorkload::from_flat(&eval);
        let iset = interned.as_set();
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(8),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(8);
        let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
        for kind in SchedulerKind::ALL {
            let serial = serialize(&run_scheduler(kind, &eval.xcts, Some(&map), &cfg));
            for shards in [2usize, 4] {
                let scfg = cfg.clone().with_shards(shards);
                assert_eq!(
                    serialize(&run_scheduler(kind, &eval.xcts, Some(&map), &scfg)),
                    serial,
                    "{kind:?} on {} (flat, {shards} shards) diverged",
                    bench.name()
                );
                assert_eq!(
                    serialize(&run_scheduler(kind, &iset, Some(&map), &scfg)),
                    serial,
                    "{kind:?} on {} (interned, {shards} shards) diverged",
                    bench.name()
                );
            }
        }
    }
}

/// Degenerate shapes shard cleanly: a single trace, more shards than
/// cores (clamped), and an empty workload.
#[test]
fn shard_edge_cases() {
    let (mut engine, mut workload) = Benchmark::Tatp.setup_small();
    let eval = collect_traces(&mut engine, workload.as_mut(), 1, 3);
    let cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(2),
        ..ReplayConfig::paper_default()
    };
    let map = find_migration_points(&eval.xcts, cfg.sim.l1i);
    let serial = serialize(&run_scheduler(
        SchedulerKind::Addict,
        &eval.xcts,
        Some(&map),
        &cfg,
    ));
    for shards in [2usize, 7, 64] {
        let scfg = cfg.clone().with_shards(shards);
        assert_eq!(
            serialize(&run_scheduler(
                SchedulerKind::Addict,
                &eval.xcts,
                Some(&map),
                &scfg
            )),
            serial,
            "single-trace replay diverged at {shards} shards"
        );
    }
    let empty: Vec<XctTrace> = Vec::new();
    let scfg = cfg.with_shards(4);
    let r = run_scheduler(SchedulerKind::Baseline, &empty, None, &scfg);
    assert_eq!(r.n_xcts, 0);
}
