//! Property-based tests for Algorithm 1, the assignment plan, and the
//! replay engine's conservation laws.

use addict_core::algorithm1::{find_migration_points, per_instance_sequences};
use addict_core::plan::{AssignmentPlan, PlanConfig};
use addict_core::replay::ReplayConfig;
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::{BlockAddr, CacheGeometry, SimConfig};
use addict_trace::{OpKind, TraceEvent, XctTrace, XctTypeId};
use proptest::prelude::*;

/// A generated transaction: per op, a walk length (blocks).
fn arb_trace() -> impl Strategy<Value = XctTrace> {
    let op = prop_oneof![
        Just(OpKind::Probe),
        Just(OpKind::Scan),
        Just(OpKind::Update),
        Just(OpKind::Insert),
    ];
    (
        0u16..3,
        prop::collection::vec((op, 1u16..60, 0u64..4), 1..6),
    )
        .prop_map(|(ty, ops)| {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(ty),
            }];
            for (kind, blocks, base_sel) in ops {
                events.push(TraceEvent::OpBegin { op: kind });
                events.push(TraceEvent::Instr {
                    block: BlockAddr(0x1000 + base_sel * 0x80),
                    n_blocks: blocks,
                    ipb: 8,
                });
                events.push(TraceEvent::OpEnd { op: kind });
            }
            events.push(TraceEvent::XctEnd);
            XctTrace {
                xct_type: XctTypeId(ty),
                events,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Algorithm 1's chosen sequence is always one of the observed
    /// candidate sequences, and candidate counts sum to the op frequency.
    #[test]
    fn algorithm1_chooses_observed_sequences(traces in prop::collection::vec(arb_trace(), 1..24)) {
        let l1i = CacheGeometry::new(16 * 64, 2); // tiny: evictions happen
        let map = find_migration_points(&traces, l1i);
        for xct in map.xct_types() {
            for op in map.ops_of(xct) {
                let chosen = map.points(xct, op).expect("chosen for profiled op");
                let candidates = map.candidates(xct, op).expect("candidates recorded");
                prop_assert!(candidates.contains_key(chosen));
                let max = candidates.values().max().copied().unwrap_or(0);
                prop_assert_eq!(candidates[chosen], max, "chosen must be most frequent");
                let total: u64 = candidates.values().sum();
                prop_assert_eq!(total, map.frequency(xct, op));
            }
        }
    }

    /// Per-instance sequences are deterministic.
    #[test]
    fn scan_is_deterministic(trace in arb_trace()) {
        let l1i = CacheGeometry::new(16 * 64, 2);
        prop_assert_eq!(
            per_instance_sequences(&trace, l1i),
            per_instance_sequences(&trace, l1i)
        );
    }

    /// Plans are well-formed for any core count: every non-fallback slot
    /// has at least one core, all core ids are in range, and a slot's
    /// replicas are distinct.
    #[test]
    fn plans_are_well_formed(
        traces in prop::collection::vec(arb_trace(), 4..24),
        n_cores in 1usize..24,
    ) {
        let l1i = CacheGeometry::new(16 * 64, 2);
        let map = find_migration_points(&traces, l1i);
        let plan = AssignmentPlan::build(&map, PlanConfig::new(n_cores));
        for ty in plan.types() {
            let xp = plan.of(ty).expect("typed plan");
            if xp.fallback {
                continue;
            }
            for (i, slot) in xp.slots.iter().enumerate() {
                prop_assert!(!slot.cores.is_empty(), "slot {i} without cores");
                let mut c = slot.cores.clone();
                c.sort_unstable();
                c.dedup();
                prop_assert_eq!(c.len(), slot.cores.len(), "duplicate replica cores");
                prop_assert!(slot.cores.iter().all(|&x| x < n_cores));
            }
            // Point order is preserved from the chosen sequence.
            for op in map.ops_of(ty) {
                let chosen = map.points(ty, op).expect("profiled");
                if let Some(op_plan) = xp.ops.get(&op) {
                    let planned: Vec<_> = op_plan.points.iter().map(|p| p.addr).collect();
                    prop_assert!(
                        planned.iter().eq(chosen.iter().take(planned.len())),
                        "points must be a prefix of the chosen sequence"
                    );
                }
            }
        }
    }

    /// Replay conservation: every scheduler executes exactly the traced
    /// instructions, finishes every transaction, and produces finite,
    /// positive clocks.
    #[test]
    fn replay_conserves_work(
        traces in prop::collection::vec(arb_trace(), 1..16),
        cores in 2usize..8,
    ) {
        let cfg = ReplayConfig {
            sim: SimConfig::paper_default().with_cores(cores),
            ..ReplayConfig::paper_default()
        }
        .with_batch_size(cores);
        let expected: u64 = traces.iter().map(|t| t.instructions()).sum();
        let map = find_migration_points(&traces, cfg.sim.l1i);
        for kind in SchedulerKind::ALL {
            let r = run_scheduler(kind, &traces, Some(&map), &cfg);
            prop_assert_eq!(r.instructions, expected, "{} lost instructions", r.scheduler);
            prop_assert_eq!(r.n_xcts, traces.len());
            prop_assert!(r.total_cycles.is_finite() && r.total_cycles >= 0.0);
            prop_assert!(r.avg_latency_cycles.is_finite() && r.avg_latency_cycles >= 0.0);
            // L1-I accesses: one per block visit, across all schedulers.
            let visits: u64 = traces.iter().map(|t| t.instr_accesses()).sum();
            prop_assert_eq!(r.stats.l1i_accesses(), visits);
        }
    }
}
