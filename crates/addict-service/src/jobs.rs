//! Job lifecycle: the registry every server endpoint reads and writes.
//!
//! A job moves `queued → running → {done, cancelled, deadline_exceeded,
//! failed}`; the registry owns that state machine plus the two bounded
//! stores around it:
//!
//! * the **admission ledger** — every admitted job reserves its
//!   estimated trace-pool bytes ([`TraceKey::estimated_resident_bytes`])
//!   up front; a job that would push reservations past the budget is
//!   rejected *before* any generation starts ([`AdmitError::OverBudget`]
//!   → the server's structured `503 + Retry-After`), and a full queue
//!   rejects with [`AdmitError::QueueFull`] (`429`);
//! * the **result store** — completed result JSON keyed by its FNV-1a
//!   digest, so a detached client can poll a byte-identical result after
//!   disconnecting, identical results from different jobs share one
//!   copy, and an LRU byte budget bounds memory (evicted results answer
//!   `410`, never wrong bytes).
//!
//! Two adjacencies ride the same lock: an **EWMA of observed job
//! latency** (fed by [`Registry::next_job`] / [`Registry::finish`],
//! read by [`Registry::retry_after`]) turns the server's `Retry-After`
//! hints into load-derived values instead of constants, and
//! [`Registry::recover`] re-inserts results a previous process dumped
//! on shutdown, so they stay pollable at their original ids across a
//! restart.
//!
//! Everything lives under one mutex with two condvars: `queue_cv` wakes
//! executors ([`Registry::next_job`] blocks on it), `changed` wakes
//! status pollers and `?wait=1` streamers ([`Registry::wait_progress`]).
//! The registry never executes anything — the server's executor pool
//! drives it.
//!
//! [`TraceKey::estimated_resident_bytes`]: addict_bench::TraceKey::estimated_resident_bytes

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use addict_bench::{CancelToken, Interrupt, JobSpec};

/// `Retry-After` fallback for a full queue until a job latency has been
/// observed: queue slots turn over at job granularity, so retrying
/// quickly is right.
pub const FALLBACK_RETRY_QUEUE_S: u64 = 1;
/// `Retry-After` fallback for a byte-budget rejection until a job
/// latency has been observed: freeing trace bytes takes a completion,
/// so back off harder.
pub const FALLBACK_RETRY_BYTES_S: u64 = 5;
/// Cap on derived `Retry-After` hints.
const MAX_RETRY_AFTER_S: u64 = 600;
/// EWMA smoothing factor for observed job latency: heavy enough on the
/// newest observation to track load shifts, light enough that one
/// outlier job doesn't whipsaw the hints.
const LATENCY_ALPHA: f64 = 0.3;

/// Fold one observed job latency into the registry's EWMA.
fn observe_latency(inner: &mut Inner, secs: f64) {
    inner.latency_ewma_s = Some(match inner.latency_ewma_s {
        Some(prev) => prev + LATENCY_ALPHA * (secs - prev),
        None => secs,
    });
}

/// Job identifier: dense, starting at 1, never reused within a server.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for an executor.
    Queued,
    /// An executor is running it.
    Running,
    /// Completed; its result is (or was) in the result store.
    Done,
    /// Stopped by `DELETE /jobs/<id>`.
    Cancelled,
    /// Stopped by its `deadline_ms` budget expiring.
    DeadlineExceeded,
    /// The executor hit a panic or an execution error.
    Failed,
}

impl JobState {
    /// Wire identifier (the `state` field of every status body).
    pub fn id(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded => "deadline_exceeded",
            JobState::Failed => "failed",
        }
    }

    /// True once the job can never change state again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// How a job ended, as reported by its executor to [`Registry::finish`].
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The serialized [`JobResult`](addict_bench::JobResult) JSON.
    Done(String),
    /// The job's token fired.
    Interrupted(Interrupt),
    /// Panic or execution error; the payload is the diagnostic.
    Failed(String),
}

/// Why a job was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The admission queue is at capacity.
    QueueFull {
        /// Jobs waiting.
        queued: usize,
        /// The queue bound.
        cap: usize,
    },
    /// The job's estimated trace bytes do not fit the remaining budget.
    OverBudget {
        /// This job's estimate ([`TraceKey::estimated_resident_bytes`]
        /// summed over its uncached keys).
        ///
        /// [`TraceKey::estimated_resident_bytes`]: addict_bench::TraceKey::estimated_resident_bytes
        estimated: usize,
        /// Bytes already reserved by admitted jobs.
        reserved: usize,
        /// The trace-pool budget.
        budget: usize,
    },
    /// The server is draining for shutdown.
    Draining,
}

/// What `GET /jobs/<id>/result` finds.
#[derive(Debug, Clone)]
pub enum ResultFetch {
    /// No such job.
    NotFound,
    /// The job has not reached a terminal state yet.
    NotReady(JobState),
    /// The job ended without a result (cancelled / deadline / failed);
    /// the payload is the error diagnostic, if any.
    Ended(JobState, Option<String>),
    /// The job completed but its result was LRU-evicted from the store.
    Evicted,
    /// The stored result bytes — byte-identical to what `?wait=1`
    /// streamed.
    Ready(Arc<String>),
}

/// A copied-out view of one job (rendered without holding the lock).
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job's id.
    pub id: JobId,
    /// Current state.
    pub state: JobState,
    /// The admitted spec.
    pub spec: JobSpec,
    /// Progress lines so far.
    pub progress: Vec<String>,
    /// Terminal diagnostic, when the job failed or was interrupted.
    pub error: Option<String>,
    /// The result digest, once done (the result-store key).
    pub result_fnv64: Option<u64>,
    /// A cancel was requested (possibly not yet observed).
    pub cancel_requested: bool,
}

/// Registry bounds; carved out of the server config.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Trace-pool byte budget the admission ledger reserves against.
    pub admission_budget: usize,
    /// Maximum queued (not yet running) jobs.
    pub max_queued: usize,
    /// Result-store byte budget.
    pub result_budget: usize,
    /// Maximum retained job records (oldest terminal records evict).
    pub max_records: usize,
}

/// Counter snapshot for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Jobs waiting for an executor.
    pub queued: usize,
    /// Jobs executing right now.
    pub running: usize,
    /// Jobs completed successfully (ever).
    pub done: u64,
    /// Jobs cancelled (ever).
    pub cancelled: u64,
    /// Jobs stopped by deadline (ever).
    pub deadline_exceeded: u64,
    /// Jobs failed (ever).
    pub failed: u64,
    /// Retained job records.
    pub records: usize,
    /// Bytes reserved by admitted-but-unfinished jobs.
    pub reserved_bytes: usize,
    /// The server is draining.
    pub draining: bool,
    /// Distinct results resident in the store.
    pub results_stored: usize,
    /// Result bytes resident.
    pub result_bytes: usize,
    /// Result-store budget.
    pub result_budget: usize,
    /// Results LRU-evicted (ever).
    pub result_evictions: u64,
    /// Completions that deduplicated onto an already-stored result.
    pub result_dedups: u64,
}

struct Record {
    spec: JobSpec,
    state: JobState,
    progress: Vec<String>,
    error: Option<String>,
    result_key: Option<u64>,
    reserved: usize,
    token: Arc<CancelToken>,
    cancel_requested: bool,
}

struct Stored {
    bytes: Arc<String>,
    last_used: u64,
    refs: usize,
}

struct Inner {
    jobs: HashMap<JobId, Record>,
    /// Insertion order, for record-cap eviction.
    order: VecDeque<JobId>,
    /// Admitted, not yet claimed by an executor.
    queue: VecDeque<JobId>,
    next_id: JobId,
    reserved: usize,
    running: usize,
    done: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    failed: u64,
    results: HashMap<u64, Stored>,
    result_bytes: usize,
    result_evictions: u64,
    result_dedups: u64,
    tick: u64,
    draining: bool,
    /// When each running job was claimed, for latency observation.
    started: HashMap<JobId, Instant>,
    /// EWMA of observed job latency in seconds; `None` until the first
    /// job finishes. Drives the `Retry-After` hints.
    latency_ewma_s: Option<f64>,
}

/// The shared job registry. See the module docs.
pub struct Registry {
    inner: Mutex<Inner>,
    /// Wakes executors: queue pushes and drain transitions.
    queue_cv: Condvar,
    /// Wakes observers: progress lines and state changes.
    changed: Condvar,
    cfg: RegistryConfig,
}

/// FNV-1a over the result bytes — the store key and the `result_fnv64`
/// every status body reports.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Registry {
    /// An empty registry with the given bounds.
    pub fn new(cfg: RegistryConfig) -> Self {
        Registry {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                order: VecDeque::new(),
                queue: VecDeque::new(),
                next_id: 1,
                reserved: 0,
                running: 0,
                done: 0,
                cancelled: 0,
                deadline_exceeded: 0,
                failed: 0,
                results: HashMap::new(),
                result_bytes: 0,
                result_evictions: 0,
                result_dedups: 0,
                tick: 0,
                draining: false,
                started: HashMap::new(),
                latency_ewma_s: None,
            }),
            queue_cv: Condvar::new(),
            changed: Condvar::new(),
            cfg,
        }
    }

    /// Admit `spec`, reserving `estimated_bytes` against the budget. The
    /// job's deadline (if any) arms here — queue wait counts against it.
    pub fn admit(&self, spec: JobSpec, estimated_bytes: usize) -> Result<JobId, AdmitError> {
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.draining {
            return Err(AdmitError::Draining);
        }
        if inner.queue.len() >= self.cfg.max_queued {
            return Err(AdmitError::QueueFull {
                queued: inner.queue.len(),
                cap: self.cfg.max_queued,
            });
        }
        if inner.reserved.saturating_add(estimated_bytes) > self.cfg.admission_budget {
            return Err(AdmitError::OverBudget {
                estimated: estimated_bytes,
                reserved: inner.reserved,
                budget: self.cfg.admission_budget,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let token = Arc::new(CancelToken::new());
        token.arm_deadline_ms(spec.deadline_ms);
        inner.jobs.insert(
            id,
            Record {
                spec,
                state: JobState::Queued,
                progress: Vec::new(),
                error: None,
                result_key: None,
                reserved: estimated_bytes,
                token,
                cancel_requested: false,
            },
        );
        inner.order.push_back(id);
        inner.queue.push_back(id);
        inner.reserved += estimated_bytes;
        self.evict_records(&mut inner);
        self.queue_cv.notify_one();
        Ok(id)
    }

    /// Re-insert a completed job recovered from a `--dump-dir` file a
    /// previous process wrote on shutdown: a terminal `Done` record
    /// whose result is immediately pollable at its original id, counted
    /// under `done`. Ids resume past every recovered id, so new
    /// admissions never collide. Returns `false` (and changes nothing)
    /// when the id is already present.
    pub fn recover(&self, id: JobId, spec: JobSpec, result: String) -> bool {
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.jobs.contains_key(&id) {
            return false;
        }
        let key = fnv64(result.as_bytes());
        inner.jobs.insert(
            id,
            Record {
                spec,
                state: JobState::Done,
                progress: Vec::new(),
                error: None,
                result_key: Some(key),
                reserved: 0,
                token: Arc::new(CancelToken::new()),
                cancel_requested: false,
            },
        );
        inner.order.push_back(id);
        inner.next_id = inner.next_id.max(id + 1);
        inner.done += 1;
        self.store_result(&mut inner, key, result);
        self.evict_records(&mut inner);
        self.changed.notify_all();
        true
    }

    /// `Retry-After` hints as `(queue-full seconds, over-budget
    /// seconds)`, derived from the EWMA of observed job latency: a queue
    /// slot frees when roughly one job finishes, while reserved bytes
    /// drain as the whole backlog does — so the byte hint additionally
    /// scales with queued + running jobs. Until a first job completes,
    /// the conservative [`FALLBACK_RETRY_QUEUE_S`] /
    /// [`FALLBACK_RETRY_BYTES_S`] constants apply.
    pub fn retry_after(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("registry lock");
        let Some(ewma) = inner.latency_ewma_s else {
            return (FALLBACK_RETRY_QUEUE_S, FALLBACK_RETRY_BYTES_S);
        };
        let backlog = (inner.queue.len() + inner.running).max(1);
        let queue_s = (ewma.ceil() as u64).clamp(1, MAX_RETRY_AFTER_S);
        let bytes_s = ((ewma * backlog as f64).ceil() as u64).clamp(queue_s, MAX_RETRY_AFTER_S);
        (queue_s, bytes_s)
    }

    /// Executor-side: block for the next queued job. Returns `None` once
    /// the registry is draining and the queue is empty — the executor's
    /// signal to exit. Queued jobs still run during a drain.
    pub fn next_job(&self) -> Option<(JobId, JobSpec, Arc<CancelToken>)> {
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            if let Some(id) = inner.queue.pop_front() {
                inner.running += 1;
                inner.started.insert(id, Instant::now());
                let record = inner.jobs.get_mut(&id).expect("queued job has a record");
                record.state = JobState::Running;
                let spec = record.spec.clone();
                let token = Arc::clone(&record.token);
                self.changed.notify_all();
                return Some((id, spec, token));
            }
            if inner.draining {
                return None;
            }
            inner = self.queue_cv.wait(inner).expect("registry lock");
        }
    }

    /// Executor-side: append a progress line.
    pub fn progress(&self, id: JobId, line: &str) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.progress.push(line.to_owned());
            self.changed.notify_all();
        }
    }

    /// Executor-side: record a job's terminal outcome, releasing its
    /// reservation. Returns true when this finish completed a drain
    /// (the caller should poke the accept loop awake).
    pub fn finish(&self, id: JobId, outcome: Outcome) -> bool {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.running -= 1;
        if let Some(claimed) = inner.started.remove(&id) {
            observe_latency(&mut inner, claimed.elapsed().as_secs_f64());
        }
        let record = inner.jobs.get_mut(&id).expect("running job has a record");
        let reserved = record.reserved;
        record.reserved = 0;
        match outcome {
            Outcome::Done(result) => {
                record.state = JobState::Done;
                let key = fnv64(result.as_bytes());
                record.result_key = Some(key);
                inner.done += 1;
                self.store_result(&mut inner, key, result);
            }
            Outcome::Interrupted(Interrupt::Cancelled) => {
                record.state = JobState::Cancelled;
                record.error = Some("job cancelled".to_owned());
                inner.cancelled += 1;
            }
            Outcome::Interrupted(Interrupt::DeadlineExceeded) => {
                record.state = JobState::DeadlineExceeded;
                record.error = Some("job deadline exceeded".to_owned());
                inner.deadline_exceeded += 1;
            }
            Outcome::Failed(message) => {
                record.state = JobState::Failed;
                record.error = Some(message);
                inner.failed += 1;
            }
        }
        inner.reserved -= reserved;
        self.changed.notify_all();
        self.queue_cv.notify_all();
        inner.draining && inner.queue.is_empty() && inner.running == 0
    }

    /// Cancel a job. Queued jobs finalize immediately (they never run);
    /// running jobs get their token fired and finalize at the next sweep
    /// point. Idempotent: cancelling a terminal job is a no-op. Returns
    /// the state after the call, or `None` for an unknown id.
    pub fn cancel(&self, id: JobId) -> Option<JobState> {
        let mut inner = self.inner.lock().expect("registry lock");
        let record = inner.jobs.get_mut(&id)?;
        match record.state {
            JobState::Queued => {
                record.state = JobState::Cancelled;
                record.error = Some("job cancelled".to_owned());
                record.cancel_requested = true;
                record.token.cancel();
                let reserved = record.reserved;
                record.reserved = 0;
                inner.reserved -= reserved;
                inner.cancelled += 1;
                inner.queue.retain(|&q| q != id);
                self.changed.notify_all();
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                record.cancel_requested = true;
                record.token.cancel();
                self.changed.notify_all();
                Some(JobState::Running)
            }
            terminal => Some(terminal),
        }
    }

    /// A copied-out view of one job.
    pub fn snapshot(&self, id: JobId) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("registry lock");
        inner.jobs.get(&id).map(|r| JobSnapshot {
            id,
            state: r.state,
            spec: r.spec.clone(),
            progress: r.progress.clone(),
            error: r.error.clone(),
            result_fnv64: r.result_key,
            cancel_requested: r.cancel_requested,
        })
    }

    /// Block until the job has progress beyond `seen` lines or reaches a
    /// terminal state; returns the fresh lines and the state (and the
    /// terminal error, if any). `None` for an unknown id. The `?wait=1`
    /// streaming loop is built on this.
    pub fn wait_progress(
        &self,
        id: JobId,
        seen: usize,
    ) -> Option<(Vec<String>, JobState, Option<String>)> {
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            let record = inner.jobs.get(&id)?;
            if record.progress.len() > seen || record.state.is_terminal() {
                return Some((
                    record.progress[seen.min(record.progress.len())..].to_vec(),
                    record.state,
                    record.error.clone(),
                ));
            }
            let (guard, _) = self
                .changed
                .wait_timeout(inner, Duration::from_millis(200))
                .expect("registry lock");
            inner = guard;
        }
    }

    /// Fetch a job's stored result.
    pub fn result(&self, id: JobId) -> ResultFetch {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.tick += 1;
        let tick = inner.tick;
        let Some(record) = inner.jobs.get(&id) else {
            return ResultFetch::NotFound;
        };
        match record.state {
            JobState::Queued | JobState::Running => ResultFetch::NotReady(record.state),
            JobState::Done => {
                let key = record.result_key.expect("done job has a result key");
                match inner.results.get_mut(&key) {
                    Some(stored) => {
                        stored.last_used = tick;
                        ResultFetch::Ready(Arc::clone(&stored.bytes))
                    }
                    None => ResultFetch::Evicted,
                }
            }
            state => ResultFetch::Ended(state, record.error.clone()),
        }
    }

    /// All job ids and states, in admission order (the `GET /jobs`
    /// listing).
    pub fn list(&self) -> Vec<(JobId, JobState)> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .order
            .iter()
            .map(|&id| (id, inner.jobs[&id].state))
            .collect()
    }

    /// Completed jobs' results, for shutdown persistence.
    pub fn done_results(&self) -> Vec<(JobId, Arc<String>)> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .order
            .iter()
            .filter_map(|&id| {
                let r = inner.jobs.get(&id)?;
                let key = r.result_key?;
                Some((id, Arc::clone(&inner.results.get(&key)?.bytes)))
            })
            .collect()
    }

    /// Start draining: no new admissions, queued jobs still execute,
    /// executors exit once the queue empties. Returns
    /// `(already drained, running, queued)`.
    pub fn begin_drain(&self) -> (bool, usize, usize) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.draining = true;
        self.queue_cv.notify_all();
        self.changed.notify_all();
        (
            inner.queue.is_empty() && inner.running == 0,
            inner.running,
            inner.queue.len(),
        )
    }

    /// True once draining and every admitted job has finished.
    pub fn drained(&self) -> bool {
        let inner = self.inner.lock().expect("registry lock");
        inner.draining && inner.queue.is_empty() && inner.running == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock");
        RegistryStats {
            queued: inner.queue.len(),
            running: inner.running,
            done: inner.done,
            cancelled: inner.cancelled,
            deadline_exceeded: inner.deadline_exceeded,
            failed: inner.failed,
            records: inner.jobs.len(),
            reserved_bytes: inner.reserved,
            draining: inner.draining,
            results_stored: inner.results.len(),
            result_bytes: inner.result_bytes,
            result_budget: self.cfg.result_budget,
            result_evictions: inner.result_evictions,
            result_dedups: inner.result_dedups,
        }
    }

    /// Insert (or deduplicate onto) a stored result, then evict LRU
    /// entries past the byte budget — never the one just stored, so a
    /// poll right after completion always finds its bytes.
    fn store_result(&self, inner: &mut Inner, key: u64, result: String) {
        inner.tick += 1;
        let tick = inner.tick;
        match inner.results.get_mut(&key) {
            Some(stored) if *stored.bytes == result => {
                stored.last_used = tick;
                stored.refs += 1;
                inner.result_dedups += 1;
            }
            _ => {
                let len = result.len();
                if let Some(old) = inner.results.insert(
                    key,
                    Stored {
                        bytes: Arc::new(result),
                        last_used: tick,
                        refs: 1,
                    },
                ) {
                    // An FNV collision with different bytes: keep the
                    // newer result (a digest must never serve bytes that
                    // differ from what the job streamed).
                    inner.result_bytes -= old.bytes.len();
                }
                inner.result_bytes += len;
                while inner.result_bytes > self.cfg.result_budget && inner.results.len() > 1 {
                    let victim = inner
                        .results
                        .iter()
                        .filter(|&(&k, _)| k != key)
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(&k, _)| k)
                        .expect("len > 1 means a victim besides the newest exists");
                    let old = inner.results.remove(&victim).expect("victim exists");
                    inner.result_bytes -= old.bytes.len();
                    inner.result_evictions += 1;
                }
            }
        }
    }

    /// Evict oldest *terminal* records past the record cap, dropping
    /// orphaned stored results with them.
    fn evict_records(&self, inner: &mut Inner) {
        while inner.jobs.len() > self.cfg.max_records {
            let Some(pos) = inner
                .order
                .iter()
                .position(|id| inner.jobs[id].state.is_terminal())
            else {
                break; // every record is live; the queue cap bounds this
            };
            let id = inner.order.remove(pos).expect("position exists");
            let record = inner.jobs.remove(&id).expect("ordered job has a record");
            if let Some(key) = record.result_key {
                if let Some(stored) = inner.results.get_mut(&key) {
                    stored.refs -= 1;
                    if stored.refs == 0 {
                        let old = inner.results.remove(&key).expect("checked present");
                        inner.result_bytes -= old.bytes.len();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_workloads::Benchmark;

    fn cfg() -> RegistryConfig {
        RegistryConfig {
            admission_budget: 1000,
            max_queued: 2,
            result_budget: 100,
            max_records: 4,
        }
    }

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(vec![Benchmark::TpcB], 8);
        s.small = true;
        s
    }

    #[test]
    fn admission_enforces_queue_and_byte_bounds() {
        let reg = Registry::new(cfg());
        let a = reg.admit(spec(), 400).unwrap();
        assert_eq!(a, 1);
        assert_eq!(
            reg.admit(spec(), 700),
            Err(AdmitError::OverBudget {
                estimated: 700,
                reserved: 400,
                budget: 1000,
            })
        );
        let _b = reg.admit(spec(), 300).unwrap();
        // Queue cap (2) reached.
        assert_eq!(
            reg.admit(spec(), 0),
            Err(AdmitError::QueueFull { queued: 2, cap: 2 })
        );
        // Finishing releases the reservation and a queue slot.
        let (id, _, _) = reg.next_job().unwrap();
        assert_eq!(id, a);
        assert!(!reg.finish(id, Outcome::Done("r".into())));
        assert_eq!(reg.stats().reserved_bytes, 300);
        assert!(reg.admit(spec(), 700).is_ok());
    }

    #[test]
    fn lifecycle_transitions_and_counters() {
        let reg = Registry::new(cfg());
        let id = reg.admit(spec(), 10).unwrap();
        assert_eq!(reg.snapshot(id).unwrap().state, JobState::Queued);
        let (claimed, _, token) = reg.next_job().unwrap();
        assert_eq!(claimed, id);
        assert_eq!(reg.snapshot(id).unwrap().state, JobState::Running);
        reg.progress(id, "working");
        assert!(!token.is_cancelled());
        reg.finish(id, Outcome::Done("{\"r\":1}".into()));
        let snap = reg.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.progress, vec!["working".to_owned()]);
        assert!(snap.result_fnv64.is_some());
        let stats = reg.stats();
        assert_eq!((stats.done, stats.running, stats.queued), (1, 0, 0));
        assert_eq!(stats.reserved_bytes, 0);
        match reg.result(id) {
            ResultFetch::Ready(bytes) => assert_eq!(*bytes, "{\"r\":1}"),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn cancel_queued_is_immediate_and_idempotent() {
        let reg = Registry::new(cfg());
        let id = reg.admit(spec(), 50).unwrap();
        assert_eq!(reg.cancel(id), Some(JobState::Cancelled));
        // Idempotent; reservation released; never reaches an executor.
        assert_eq!(reg.cancel(id), Some(JobState::Cancelled));
        assert_eq!(reg.stats().reserved_bytes, 0);
        assert_eq!(reg.stats().cancelled, 1);
        assert!(matches!(
            reg.result(id),
            ResultFetch::Ended(JobState::Cancelled, _)
        ));
        assert_eq!(reg.cancel(999), None);
        // The queue is empty: a drain completes immediately.
        assert!(reg.begin_drain().0);
        assert!(reg.next_job().is_none());
    }

    #[test]
    fn cancel_running_fires_the_token() {
        let reg = Registry::new(cfg());
        let id = reg.admit(spec(), 0).unwrap();
        let (_, _, token) = reg.next_job().unwrap();
        assert_eq!(reg.cancel(id), Some(JobState::Running));
        assert!(token.is_cancelled());
        assert!(reg.snapshot(id).unwrap().cancel_requested);
        reg.finish(id, Outcome::Interrupted(Interrupt::Cancelled));
        assert_eq!(reg.snapshot(id).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn results_deduplicate_and_evict_lru() {
        let reg = Registry::new(cfg()); // result_budget: 100
        let run = |result: &str| {
            let id = reg.admit(spec(), 0).unwrap();
            let (claimed, _, _) = reg.next_job().unwrap();
            assert_eq!(claimed, id);
            reg.finish(id, Outcome::Done(result.to_owned()));
            id
        };
        let a = run(&"a".repeat(60));
        let b = run(&"a".repeat(60)); // identical: dedups, no extra bytes
        let stats = reg.stats();
        assert_eq!(stats.results_stored, 1);
        assert_eq!(stats.result_bytes, 60);
        assert_eq!(stats.result_dedups, 1);
        // A third distinct result pushes past 100 bytes: LRU evicts the
        // shared first result, never the just-stored one.
        let c = run(&"c".repeat(60));
        let stats = reg.stats();
        assert_eq!(stats.results_stored, 1);
        assert_eq!(stats.result_evictions, 1);
        assert!(matches!(reg.result(a), ResultFetch::Evicted));
        assert!(matches!(reg.result(b), ResultFetch::Evicted));
        assert!(matches!(reg.result(c), ResultFetch::Ready(_)));
    }

    #[test]
    fn record_cap_evicts_oldest_terminal_only() {
        let reg = Registry::new(cfg()); // max_records: 4
        let run = |result: &str| {
            let id = reg.admit(spec(), 0).unwrap();
            reg.next_job().unwrap();
            reg.finish(id, Outcome::Done(result.to_owned()));
            id
        };
        let first = run("r1");
        for i in 2..=4 {
            run(&format!("r{i}"));
        }
        assert_eq!(reg.stats().records, 4);
        // A fifth admission evicts the oldest terminal record (job 1) —
        // and with it the only reference to its stored result.
        let live = reg.admit(spec(), 0).unwrap();
        assert_eq!(reg.stats().records, 4);
        assert!(reg.snapshot(first).is_none());
        assert!(matches!(reg.result(first), ResultFetch::NotFound));
        assert!(reg.snapshot(live).is_some());
    }

    #[test]
    fn recover_restores_done_records_and_advances_ids() {
        let reg = Registry::new(cfg());
        assert!(reg.recover(7, spec(), "{\"r\":7}".into()));
        assert!(!reg.recover(7, spec(), "ignored".into()), "duplicate id");
        let snap = reg.snapshot(7).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert!(snap.result_fnv64.is_some());
        match reg.result(7) {
            ResultFetch::Ready(bytes) => assert_eq!(*bytes, "{\"r\":7}"),
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(reg.stats().done, 1);
        // New admissions pick up past the recovered id.
        assert_eq!(reg.admit(spec(), 0).unwrap(), 8);
        // A fresh completion with identical bytes dedups onto the
        // recovered copy — byte identity survives the restart.
        let (id, _, _) = reg.next_job().unwrap();
        reg.finish(id, Outcome::Done("{\"r\":7}".into()));
        assert_eq!(reg.stats().result_dedups, 1);
        assert_eq!(reg.stats().results_stored, 1);
    }

    #[test]
    fn retry_after_derives_from_latency_ewma() {
        let reg = Registry::new(cfg());
        // No observations yet: the conservative fallbacks.
        assert_eq!(
            reg.retry_after(),
            (FALLBACK_RETRY_QUEUE_S, FALLBACK_RETRY_BYTES_S)
        );
        // One observed latency: the queue hint rounds it up, the byte
        // hint scales with the backlog (two queued jobs here).
        observe_latency(&mut reg.inner.lock().unwrap(), 2.5);
        reg.admit(spec(), 0).unwrap();
        reg.admit(spec(), 0).unwrap();
        assert_eq!(reg.retry_after(), (3, 5));
        // The EWMA smooths toward later observations instead of
        // jumping: 2.5 + 0.3 * (22.5 - 2.5) = 8.5 → ceil 9.
        observe_latency(&mut reg.inner.lock().unwrap(), 22.5);
        assert_eq!(reg.retry_after(), (9, 17));
    }

    /// Sub-second (even zero) latency EWMAs still hint a full second:
    /// `Retry-After: 0` would license clients to reconnect instantly
    /// against a server that just told them it is overloaded.
    #[test]
    fn retry_after_floors_at_one_second() {
        let reg = Registry::new(cfg());
        observe_latency(&mut reg.inner.lock().unwrap(), 0.0);
        assert_eq!(reg.retry_after(), (1, 1));
        let reg = Registry::new(cfg());
        observe_latency(&mut reg.inner.lock().unwrap(), 0.2);
        reg.admit(spec(), 0).unwrap();
        reg.admit(spec(), 0).unwrap();
        let (queue_s, bytes_s) = reg.retry_after();
        assert!(queue_s >= 1 && bytes_s >= 1, "({queue_s}, {bytes_s})");
    }

    #[test]
    fn drain_refuses_admissions_and_releases_executors() {
        let reg = Registry::new(cfg());
        let id = reg.admit(spec(), 0).unwrap();
        let (drained, running, queued) = reg.begin_drain();
        assert!(!drained);
        assert_eq!((running, queued), (0, 1));
        assert_eq!(reg.admit(spec(), 0), Err(AdmitError::Draining));
        // The queued job still executes during the drain.
        let (claimed, _, _) = reg.next_job().unwrap();
        assert_eq!(claimed, id);
        assert!(!reg.drained());
        // Its finish completes the drain; executors then see None.
        assert!(reg.finish(id, Outcome::Done("r".into())));
        assert!(reg.drained());
        assert!(reg.next_job().is_none());
    }
}
