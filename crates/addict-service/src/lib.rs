//! # addict-service
//!
//! Replay-as-a-service: a resident evaluation server (and its client)
//! over the `addict-bench` job layer. The batch binaries pay trace
//! generation — seconds to minutes of storage-engine population — on
//! every invocation; a resident server pays it once per
//! `(benchmark, seed, n_xcts, chunking)` and serves every later job from
//! the shared in-memory [`TracePool`](addict_bench::TracePool).
//!
//! The crate adds **no** evaluation logic of its own: jobs parse into
//! [`JobSpec`](addict_bench::JobSpec) and execute through
//! [`run_job_with`](addict_bench::run_job_with) — exactly the code path
//! the batch binaries use — so a server-executed job serializes
//! byte-identical to its batch twin (asserted end-to-end by
//! `tests/service_roundtrip.rs`), whether streamed over `?wait=1` or
//! polled from the result store after a disconnect.
//!
//! | Piece | What it is |
//! |-------|------------|
//! | [`http`] | minimal hand-rolled HTTP/1.1 (no external deps), socket deadlines |
//! | [`jobs`] | job lifecycle registry: admission ledger, queue, result store |
//! | [`faults`] | injectable stalls/panics for the chaos suite (`tests/service_chaos.rs`) |
//! | [`server`] | `addict-serve`: connection + executor pools, shared trace cache |
//! | [`client`] | `addict-cli`: submit/detach/poll/cancel, retry with backoff |
//!
//! Protocol, lifecycle, and failure semantics are documented in
//! `SERVICE.md` at the repo root.

pub mod client;
pub mod faults;
pub mod http;
pub mod jobs;
pub mod server;

pub use client::{
    backoff_ms, cancel_job, get, job_result, job_status, poll_job, render_table, shutdown, submit,
    submit_detached, submit_with_retry, ServiceError,
};
pub use faults::FaultPlan;
pub use jobs::{AdmitError, JobId, JobState, Registry, RegistryConfig};
pub use server::{Server, ServerConfig, ServerHandle};
