//! # addict-service
//!
//! Replay-as-a-service: a resident evaluation server (and its client)
//! over the `addict-bench` job layer. The batch binaries pay trace
//! generation — seconds to minutes of storage-engine population — on
//! every invocation; a resident server pays it once per
//! `(benchmark, seed, n_xcts, chunking)` and serves every later job from
//! the shared in-memory [`TracePool`](addict_bench::TracePool).
//!
//! The crate adds **no** evaluation logic of its own: jobs parse into
//! [`JobSpec`](addict_bench::JobSpec) and execute through
//! [`run_job`](addict_bench::run_job) — exactly the code path the batch
//! binaries use — so a server-executed job serializes byte-identical to
//! its batch twin (asserted end-to-end by `tests/service_roundtrip.rs`).
//!
//! | Piece | What it is |
//! |-------|------------|
//! | [`http`] | minimal hand-rolled HTTP/1.1 (no external deps) |
//! | [`server`] | `addict-serve`: bounded worker pool + shared trace cache |
//! | [`client`] | `addict-cli`: submit, stream progress, render tables |
//!
//! Protocol and cache semantics are documented in `SERVICE.md` at the
//! repo root.

pub mod client;
pub mod http;
pub mod server;

pub use client::{get, render_table, submit};
pub use server::{Server, ServerConfig};
