//! Client side of the service protocol: submit a job (streamed or
//! detached), poll, cancel, retry with backoff, render the result table.
//! `addict-cli` is a thin shell over this.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use addict_bench::jsontext::JsonValue;
use addict_bench::{summary_rows, SummaryRow};

use crate::http::{read_response_meta, Response};
use crate::jobs::JobId;

/// A failed service interaction, carrying what the retry policy needs:
/// the HTTP status (when one arrived) and any `Retry-After` hint.
#[derive(Debug, Clone)]
pub struct ServiceError {
    /// Status code, or `None` for a transport failure (connect/read).
    pub status: Option<u16>,
    /// The server's `Retry-After` seconds, when sent (429/503).
    pub retry_after: Option<u64>,
    /// Human-readable diagnosis.
    pub message: String,
}

impl ServiceError {
    fn transport(message: String) -> Self {
        ServiceError {
            status: None,
            retry_after: None,
            message,
        }
    }

    /// Whether a retry can help: transport failures, timeouts (408),
    /// overload (429), and server-side errors (5xx). A `400`/`404`/`409`
    /// will fail identically on every attempt.
    pub fn retryable(&self) -> bool {
        match self.status {
            None => true,
            Some(s) => s == 408 || s == 429 || (500..=599).contains(&s),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.status {
            Some(s) => write!(f, "server answered {s}: {}", self.message.trim()),
            None => f.write_str(self.message.trim()),
        }
    }
}

/// One request/response exchange (non-streaming endpoints).
fn request<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, ServiceError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ServiceError::transport(format!("connect: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| ServiceError::transport(format!("clone: {e}")))?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: addict\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .and_then(|()| writer.flush())
    .map_err(|e| ServiceError::transport(format!("send: {e}")))?;
    read_response_meta(&mut BufReader::new(stream)).map_err(ServiceError::transport)
}

/// Turn a non-200 response into a [`ServiceError`] (extracting the
/// structured `message` when the body carries one).
fn status_error(resp: Response) -> ServiceError {
    let message = JsonValue::parse(resp.body.trim())
        .ok()
        .and_then(|doc| {
            let err = doc.get("error")?;
            let code = err.get("code")?.as_str("code").ok()?.to_owned();
            let msg = err.get("message")?.as_str("message").ok()?.to_owned();
            Some(format!("{code}: {msg}"))
        })
        .unwrap_or_else(|| resp.body.trim().to_owned());
    ServiceError {
        status: Some(resp.status),
        retry_after: resp.retry_after,
        message,
    }
}

/// POST `spec_json` to `/jobs?wait=1` and return the result JSON.
/// Progress lines (the `#`-prefixed stream before the result) are handed
/// to `on_progress` as they arrive.
pub fn submit<A: ToSocketAddrs>(
    addr: A,
    spec_json: &str,
    mut on_progress: impl FnMut(&str),
) -> Result<String, String> {
    submit_once(addr, spec_json, &mut on_progress).map_err(|e| e.to_string())
}

fn submit_once<A: ToSocketAddrs>(
    addr: A,
    spec_json: &str,
    on_progress: &mut dyn FnMut(&str),
) -> Result<String, ServiceError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ServiceError::transport(format!("connect: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| ServiceError::transport(format!("clone: {e}")))?;
    write!(
        writer,
        "POST /jobs?wait=1 HTTP/1.1\r\nHost: addict\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        spec_json.len(),
        spec_json
    )
    .and_then(|()| writer.flush())
    .map_err(|e| ServiceError::transport(format!("send: {e}")))?;

    let mut reader = BufReader::new(stream);
    // Status line + headers. The server defers the 200 until the job
    // does real work, so a pre-start failure arrives as a proper status.
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ServiceError::transport(format!("read status: {e}")))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServiceError::transport(format!("malformed status line {line:?}")))?;
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| ServiceError::transport(format!("read header: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    if status != 200 {
        let mut body = String::new();
        let _ = reader.read_to_string(&mut body);
        return Err(status_error(Response {
            status,
            retry_after,
            body,
        }));
    }
    // Progress lines until the blank separator, then the result document.
    let mut last_progress = String::new();
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ServiceError::transport(format!("read progress: {e}")))?;
        if n == 0 {
            // The stream ended without a result: the job died mid-run
            // (its `# error:` trailer is the diagnosis). The 200 already
            // went out, so surface it as a non-retryable error — the
            // job's fate is known, a blind resubmit may not be wanted.
            let context = if last_progress.is_empty() {
                String::new()
            } else {
                format!(" (last: {last_progress})")
            };
            return Err(ServiceError {
                status: Some(200),
                retry_after: None,
                message: format!("connection closed before the result{context}"),
            });
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let line = line.strip_prefix("# ").unwrap_or(line);
        last_progress = line.to_owned();
        on_progress(line);
    }
    let mut result = String::new();
    reader
        .read_to_string(&mut result)
        .map_err(|e| ServiceError::transport(format!("read result: {e}")))?;
    Ok(result)
}

/// Backoff before retry `attempt` (0-based): the server's `Retry-After`
/// when present (floored at 1 s — a server emitting `Retry-After: 0`
/// must not turn the client into a zero-delay reconnect spin against an
/// already-overloaded server), else exponential from `base_ms` with
/// deterministic jitter derived from `salt` (no RNG dependency; distinct
/// salts decorrelate a client fleet). Capped at 30 s.
pub fn backoff_ms(attempt: u32, base_ms: u64, retry_after_s: Option<u64>, salt: u64) -> u64 {
    if let Some(s) = retry_after_s {
        return s.max(1).saturating_mul(1000).min(30_000);
    }
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(10));
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for b in attempt.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    exp.saturating_add(h % base).min(30_000)
}

/// [`submit`] with up to `retries` retries on retryable failures
/// (connect errors, 408/429/5xx), honoring `Retry-After` and backing
/// off exponentially with jitter otherwise. `on_retry` observes each
/// `(attempt, delay_ms, error)` before the sleep.
pub fn submit_with_retry<A: ToSocketAddrs + Clone>(
    addr: A,
    spec_json: &str,
    retries: u32,
    base_ms: u64,
    mut on_progress: impl FnMut(&str),
    mut on_retry: impl FnMut(u32, u64, &str),
) -> Result<String, String> {
    let salt = u64::from(std::process::id());
    let mut attempt = 0u32;
    loop {
        match submit_once(addr.clone(), spec_json, &mut on_progress) {
            Ok(result) => return Ok(result),
            Err(e) if attempt < retries && e.retryable() => {
                let delay = backoff_ms(attempt, base_ms, e.retry_after, salt);
                on_retry(attempt + 1, delay, &e.to_string());
                std::thread::sleep(Duration::from_millis(delay));
                attempt += 1;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// POST `spec_json` to `/jobs` (detached): returns the job id
/// immediately; the job runs server-side regardless of what this client
/// does next.
pub fn submit_detached<A: ToSocketAddrs>(addr: A, spec_json: &str) -> Result<JobId, String> {
    let resp = request(addr, "POST", "/jobs", Some(spec_json)).map_err(|e| e.to_string())?;
    if resp.status != 202 {
        return Err(status_error(resp).to_string());
    }
    JsonValue::parse(resp.body.trim())
        .ok()
        .and_then(|doc| doc.get("id")?.as_u64("id").ok())
        .ok_or_else(|| format!("malformed submission reply: {}", resp.body.trim()))
}

/// GET `/jobs/<id>`: the raw status JSON.
pub fn job_status<A: ToSocketAddrs>(addr: A, id: JobId) -> Result<String, String> {
    get(addr, &format!("/jobs/{id}"))
}

/// GET `/jobs/<id>/result`: the stored result bytes (errors carry the
/// structured status — `409` not ready, `410` evicted, ...).
pub fn job_result<A: ToSocketAddrs>(addr: A, id: JobId) -> Result<String, ServiceError> {
    let resp = request(addr, "GET", &format!("/jobs/{id}/result"), None)?;
    if resp.status != 200 {
        return Err(status_error(resp));
    }
    Ok(resp.body)
}

/// Follow a detached job to completion: poll `/jobs/<id>`, emit progress
/// lines as they appear, and return the stored result once done. Errors
/// on terminal non-done states (carrying the server's diagnostic).
pub fn poll_job<A: ToSocketAddrs + Clone>(
    addr: A,
    id: JobId,
    mut on_progress: impl FnMut(&str),
) -> Result<String, String> {
    let mut seen = 0usize;
    loop {
        let status = job_status(addr.clone(), id)?;
        let doc =
            JsonValue::parse(status.trim()).map_err(|e| format!("malformed status body: {e}"))?;
        let state = doc
            .get("state")
            .and_then(|v| v.as_str("state").ok().map(str::to_owned))
            .ok_or("status body is missing \"state\"")?;
        if let Some(progress) = doc.get("progress").and_then(|v| v.as_arr("progress").ok()) {
            for line in progress.iter().skip(seen) {
                if let Ok(text) = line.as_str("progress line") {
                    on_progress(text);
                }
            }
            seen = seen.max(progress.len());
        }
        match state.as_str() {
            "done" => return job_result(addr, id).map_err(|e| e.to_string()),
            "queued" | "running" => {
                std::thread::sleep(Duration::from_millis(150));
            }
            terminal => {
                let detail = doc
                    .get("error")
                    .and_then(|v| v.as_str("error").ok().map(str::to_owned))
                    .unwrap_or_else(|| terminal.to_owned());
                return Err(format!("job {id} {terminal}: {detail}"));
            }
        }
    }
}

/// DELETE `/jobs/<id>`: request cancellation. Returns the server's
/// `{"id":...,"state":...}` acknowledgment.
pub fn cancel_job<A: ToSocketAddrs>(addr: A, id: JobId) -> Result<String, String> {
    let resp = request(addr, "DELETE", &format!("/jobs/{id}"), None).map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(status_error(resp).to_string());
    }
    Ok(resp.body)
}

/// POST `/shutdown`: ask the server to drain and exit.
pub fn shutdown<A: ToSocketAddrs>(addr: A) -> Result<String, String> {
    let resp = request(addr, "POST", "/shutdown", None).map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(status_error(resp).to_string());
    }
    Ok(resp.body)
}

/// GET an endpoint (`/stats`, `/healthz`, `/jobs/<id>`) and return its
/// body.
pub fn get<A: ToSocketAddrs>(addr: A, path: &str) -> Result<String, String> {
    let resp = request(addr, "GET", path, None).map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(status_error(resp).to_string());
    }
    Ok(resp.body)
}

/// Render a serialized [`JobResult`](addict_bench::JobResult) as the
/// summary table `addict-cli` prints.
pub fn render_table(result_json: &str) -> Result<String, String> {
    let rows = summary_rows(result_json).map_err(|e| e.message)?;
    Ok(format_rows(&rows))
}

fn format_rows(rows: &[SummaryRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<9} {:>6} {:>10} {:>14} {:>10} {:>12}",
        "workload", "scheduler", "batch", "events", "total_cycles", "l1i_mpki", "switches/ki"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<9} {:>6} {:>10} {:>14.0} {:>10.2} {:>12.3}",
            r.workload,
            r.scheduler,
            r.batch_size
                .map_or_else(|| "-".to_owned(), |b| b.to_string()),
            r.events,
            r.total_cycles,
            r.l1i_mpki,
            r.switches_per_ki,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_one_row_per_point() {
        let doc = r#"{
  "spec": {"benchmarks":["tpcb"],"schedulers":["baseline"],"n_xcts":2,"threads":1,"batch_sizes":[],"chunk":64,"small":true,"seed":2,"deadline_ms":0},
  "points": [
    { "workload": "TPC-B", "scheduler": "Baseline", "batch_size": null, "n_xcts": 2, "events": 100, "instructions": 900, "total_cycles": 1234.5, "avg_latency_cycles": 10.0, "l1i_mpki": 7.25, "l1d_mpki": 1.0, "llc_mpki": 0.5, "switches_per_ki": 0.125, "overhead_fraction": 0, "result_fnv64": "00000000deadbeef" },
    { "workload": "TPC-B", "scheduler": "ADDICT", "batch_size": 8, "n_xcts": 2, "events": 100, "instructions": 900, "total_cycles": 900.0, "avg_latency_cycles": 9.0, "l1i_mpki": 3.5, "l1d_mpki": 1.0, "llc_mpki": 0.5, "switches_per_ki": 0.25, "overhead_fraction": 0.01, "result_fnv64": "00000000deadbeef" }
  ]
}"#;
        let table = render_table(doc).unwrap();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "{table}");
        assert!(lines[0].contains("total_cycles"));
        assert!(lines[1].contains("Baseline") && lines[1].contains('-'));
        assert!(lines[2].contains("ADDICT") && lines[2].contains('8'));
        assert!(render_table("{}").is_err());
    }

    #[test]
    fn backoff_honors_retry_after_and_grows_with_jitter() {
        // Retry-After wins verbatim (seconds → ms), capped.
        assert_eq!(backoff_ms(0, 100, Some(5), 7), 5000);
        assert_eq!(backoff_ms(3, 100, Some(90), 7), 30_000);
        // Exponential without the hint: each attempt at least doubles
        // the base, jitter stays under one base.
        for attempt in 0..6 {
            let d = backoff_ms(attempt, 100, None, 7);
            let floor = 100 << attempt;
            assert!(d >= floor && d < floor + 100, "attempt {attempt}: {d}");
        }
        // Deterministic per (attempt, salt); different salts decorrelate.
        assert_eq!(backoff_ms(2, 100, None, 7), backoff_ms(2, 100, None, 7));
        let spread: std::collections::HashSet<u64> = (0..16)
            .map(|salt| backoff_ms(0, 1000, None, salt))
            .collect();
        assert!(spread.len() > 8, "jitter collapsed: {spread:?}");
        // Capped at 30 s even for huge attempts.
        assert_eq!(backoff_ms(31, 10_000, None, 7), 30_000);
    }

    /// A server-sent `Retry-After: 0` must not become a zero-millisecond
    /// reconnect spin: the client floors the hint at one second.
    #[test]
    fn retry_after_zero_floors_at_one_second() {
        assert_eq!(backoff_ms(0, 100, Some(0), 7), 1000);
        for attempt in 0..4 {
            assert!(
                backoff_ms(attempt, 1, Some(0), attempt.into()) >= 1000,
                "attempt {attempt} spun"
            );
        }
        // Non-zero hints are still honored verbatim.
        assert_eq!(backoff_ms(0, 100, Some(1), 7), 1000);
        assert_eq!(backoff_ms(0, 100, Some(2), 7), 2000);
    }

    #[test]
    fn retryability_follows_the_status_class() {
        let e = |status: Option<u16>| ServiceError {
            status,
            retry_after: None,
            message: String::new(),
        };
        assert!(e(None).retryable()); // transport
        for s in [408, 429, 500, 503, 504] {
            assert!(e(Some(s)).retryable(), "{s}");
        }
        for s in [200, 400, 404, 409, 410] {
            assert!(!e(Some(s)).retryable(), "{s}");
        }
    }
}
