//! Client side of the service protocol: submit a job, stream progress,
//! render the result table. `addict-cli` is a thin shell over this.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use addict_bench::{summary_rows, SummaryRow};

use crate::http::read_response;

/// POST `spec_json` to the server's `/jobs` and return the result JSON.
/// Progress lines (the `#`-prefixed stream before the result) are handed
/// to `on_progress` as they arrive.
pub fn submit<A: ToSocketAddrs>(
    addr: A,
    spec_json: &str,
    mut on_progress: impl FnMut(&str),
) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    write!(
        writer,
        "POST /jobs HTTP/1.1\r\nHost: addict\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        spec_json.len(),
        spec_json
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    // Status line + headers.
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if header.trim_end().is_empty() {
            break;
        }
    }
    if status != 200 {
        let mut body = String::new();
        let _ = reader.read_to_string(&mut body);
        return Err(format!("server answered {status}: {}", body.trim()));
    }
    // Progress lines until the blank separator, then the result document.
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read progress: {e}"))?;
        if n == 0 {
            return Err("connection closed before the result".to_owned());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        on_progress(line.strip_prefix("# ").unwrap_or(line));
    }
    let mut result = String::new();
    reader
        .read_to_string(&mut result)
        .map_err(|e| format!("read result: {e}"))?;
    Ok(result)
}

/// GET an endpoint (`/stats`, `/healthz`) and return its body.
pub fn get<A: ToSocketAddrs>(addr: A, path: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    write!(
        writer,
        "GET {path} HTTP/1.1\r\nHost: addict\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    let (status, body) = read_response(&mut BufReader::new(stream))?;
    if status != 200 {
        return Err(format!("server answered {status}: {}", body.trim()));
    }
    Ok(body)
}

/// Render a serialized [`JobResult`](addict_bench::JobResult) as the
/// summary table `addict-cli` prints.
pub fn render_table(result_json: &str) -> Result<String, String> {
    let rows = summary_rows(result_json).map_err(|e| e.message)?;
    Ok(format_rows(&rows))
}

fn format_rows(rows: &[SummaryRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<9} {:>6} {:>10} {:>14} {:>10} {:>12}",
        "workload", "scheduler", "batch", "events", "total_cycles", "l1i_mpki", "switches/ki"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<9} {:>6} {:>10} {:>14.0} {:>10.2} {:>12.3}",
            r.workload,
            r.scheduler,
            r.batch_size
                .map_or_else(|| "-".to_owned(), |b| b.to_string()),
            r.events,
            r.total_cycles,
            r.l1i_mpki,
            r.switches_per_ki,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_one_row_per_point() {
        let doc = r#"{
  "spec": {"benchmarks":["tpcb"],"schedulers":["baseline"],"n_xcts":2,"threads":1,"batch_sizes":[],"chunk":64,"small":true,"seed":2},
  "points": [
    { "workload": "TPC-B", "scheduler": "Baseline", "batch_size": null, "n_xcts": 2, "events": 100, "instructions": 900, "total_cycles": 1234.5, "avg_latency_cycles": 10.0, "l1i_mpki": 7.25, "l1d_mpki": 1.0, "llc_mpki": 0.5, "switches_per_ki": 0.125, "overhead_fraction": 0, "result_fnv64": "00000000deadbeef" },
    { "workload": "TPC-B", "scheduler": "ADDICT", "batch_size": 8, "n_xcts": 2, "events": 100, "instructions": 900, "total_cycles": 900.0, "avg_latency_cycles": 9.0, "l1i_mpki": 3.5, "l1d_mpki": 1.0, "llc_mpki": 0.5, "switches_per_ki": 0.25, "overhead_fraction": 0.01, "result_fnv64": "00000000deadbeef" }
  ]
}"#;
        let table = render_table(doc).unwrap();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "{table}");
        assert!(lines[0].contains("total_cycles"));
        assert!(lines[1].contains("Baseline") && lines[1].contains('-'));
        assert!(lines[2].contains("ADDICT") && lines[2].contains('8'));
        assert!(render_table("{}").is_err());
    }
}
