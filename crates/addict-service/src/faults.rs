//! Fault injection for the chaos test suite.
//!
//! A [`FaultPlan`] is wired into every server and is a no-op until a
//! test arms it (production code never does). Two fault families live
//! here; the third — forced trace-generation failures — already lives in
//! the pool itself ([`TracePool::fail_next_generations`]):
//!
//! * **worker panics** — [`FaultPlan::panic_next_jobs`] makes the next
//!   `n` jobs panic at execution start, exercising the `catch_unwind`
//!   containment path (structured 500, executor survives, pool at full
//!   strength);
//! * **deterministic stalls** — [`FaultPlan::stall_after_progress`]
//!   parks the executing job on a condvar latch after its n-th progress
//!   line. Cancellation, deadline, and overload races become
//!   deterministic: the test arms the gate, submits, waits until the job
//!   is provably parked ([`FaultPlan::wait_until_stalled`]), performs
//!   the racing action, then [`FaultPlan::release_stall`]s. No sleeps,
//!   no timing assumptions.
//!
//! [`TracePool::fail_next_generations`]: addict_bench::TracePool::fail_next_generations

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Safety valve: a stalled job self-releases after this long, so an
/// arming bug in a test fails loudly (assertions fire) instead of
/// deadlocking the suite.
const STALL_SAFETY: Duration = Duration::from_secs(30);

#[derive(Debug, Default)]
struct Gate {
    /// Progress lines remaining before the stall engages (`None` =
    /// disarmed).
    after_lines: Option<u32>,
    /// A job is currently parked on the latch.
    stalled: bool,
    /// The test released the latch.
    released: bool,
}

/// Injectable faults, shared between the server's executors and the
/// chaos tests. All methods are cheap and lock-free in the disarmed
/// state except the stall gate's per-progress-line mutex hop.
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_jobs: AtomicU32,
    gate: Mutex<Gate>,
    cv: Condvar,
}

impl FaultPlan {
    /// A disarmed plan (every hook is a no-op).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arm the next `n` jobs to panic at execution start (before any
    /// progress line), as if the executor hit a bug mid-job.
    pub fn panic_next_jobs(&self, n: u32) {
        self.panic_jobs.store(n, Ordering::SeqCst);
    }

    /// Executor-side: consume one armed panic, if any.
    pub(crate) fn take_job_panic(&self) -> bool {
        self.panic_jobs
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Arm the stall gate: the job that emits the `lines`-th progress
    /// line (1-based) parks on it until [`release_stall`]
    /// (re-arming replaces any previous arming).
    ///
    /// [`release_stall`]: FaultPlan::release_stall
    pub fn stall_after_progress(&self, lines: u32) {
        let mut gate = self.gate.lock().expect("fault gate lock");
        *gate = Gate {
            after_lines: Some(lines),
            stalled: false,
            released: false,
        };
    }

    /// Open the latch: the parked job (if any) resumes, and the gate
    /// disarms.
    pub fn release_stall(&self) {
        let mut gate = self.gate.lock().expect("fault gate lock");
        gate.released = true;
        gate.after_lines = None;
        self.cv.notify_all();
    }

    /// Test-side: block until a job is parked on the gate (or `timeout`
    /// passes). Returns whether the stall was observed.
    pub fn wait_until_stalled(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut gate = self.gate.lock().expect("fault gate lock");
        while !gate.stalled {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self
                .cv
                .wait_timeout(gate, deadline - now)
                .expect("fault gate lock");
            gate = g;
        }
        true
    }

    /// Executor-side: account one progress line; park if it trips the
    /// armed threshold.
    pub(crate) fn on_progress(&self) {
        let mut gate = self.gate.lock().expect("fault gate lock");
        let Some(remaining) = gate.after_lines else {
            return;
        };
        match remaining.checked_sub(1) {
            Some(left) if left > 0 => {
                gate.after_lines = Some(left);
            }
            _ => {
                // This line trips the gate: announce the stall and park.
                gate.after_lines = None;
                gate.stalled = true;
                self.cv.notify_all();
                let deadline = std::time::Instant::now() + STALL_SAFETY;
                while !gate.released {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (g, _) = self
                        .cv
                        .wait_timeout(gate, deadline - now)
                        .expect("fault gate lock");
                    gate = g;
                }
                gate.stalled = false;
                self.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_is_a_no_op() {
        let plan = FaultPlan::new();
        assert!(!plan.take_job_panic());
        plan.on_progress(); // returns immediately
        assert!(!plan.wait_until_stalled(Duration::from_millis(10)));
    }

    #[test]
    fn panic_countdown_consumes_exactly_n() {
        let plan = FaultPlan::new();
        plan.panic_next_jobs(2);
        assert!(plan.take_job_panic());
        assert!(plan.take_job_panic());
        assert!(!plan.take_job_panic());
    }

    #[test]
    fn stall_gate_parks_the_nth_line_and_releases() {
        let plan = FaultPlan::new();
        plan.stall_after_progress(2);
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                plan.on_progress(); // line 1: passes
                plan.on_progress(); // line 2: parks here
                plan.on_progress(); // disarmed after release: passes
            });
            assert!(plan.wait_until_stalled(Duration::from_secs(5)));
            plan.release_stall();
            worker.join().unwrap();
        });
        // Releasing disarms: nothing parks anymore.
        plan.on_progress();
        assert!(!plan.wait_until_stalled(Duration::from_millis(10)));
    }
}
