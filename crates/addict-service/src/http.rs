//! Minimal HTTP/1.1 plumbing for the evaluation service.
//!
//! The workspace is offline, so the wire layer is hand-rolled over
//! `std::net`: enough HTTP/1.1 to serve `curl` and the bundled client —
//! request line, headers, `Content-Length` bodies, `Connection: close`
//! responses. Responses stream: progress lines flush as the job executes
//! (`Transfer-Encoding` is avoided by closing the connection to delimit
//! the body, which every HTTP/1.1 client understands). Deliberately *not*
//! a web framework: no keep-alive, no chunked encoding, no routing table
//! — the service has three endpoints.

use std::io::{BufRead, Write};

/// Largest accepted request body. A job spec is a few hundred bytes; a
/// megabyte bound keeps a misbehaving client from ballooning the server.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target (`/jobs`, `/stats`).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one request off `r`. Errors are client-facing diagnostics (the
/// server answers them with 400).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, String> {
    let mut line = String::new();
    r.read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let path = parts.next().ok_or("request line missing path")?.to_owned();
    let version = parts.next().ok_or("request line missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(format!("malformed header {header:?}"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad Content-Length {value:?}"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                ));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(r, &mut body)
            .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    }
    Ok(Request { method, path, body })
}

/// Write a complete response with a known body.
pub fn respond<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}

/// Start a streaming response: status and headers only, no
/// `Content-Length` — the connection close delimits the body. The caller
/// writes (and flushes) body text as it becomes available.
pub fn start_streaming<W: Write>(w: &mut W, content_type: &str) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    w.flush()
}

/// Parse a response off `r`: `(status, body)`. Reads to EOF when no
/// `Content-Length` is present (the server's streaming mode).
pub fn read_response<R: BufRead>(r: &mut R) -> Result<(u16, String), String> {
    let mut line = String::new();
    r.read_line(&mut line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            std::io::Read::read_exact(r, &mut body)
                .map_err(|e| format!("reading {n}-byte body: {e}"))?;
        }
        None => {
            std::io::Read::read_to_end(r, &mut body)
                .map_err(|e| format!("reading streamed body: {e}"))?;
        }
    }
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| "response body is not UTF-8".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body() {
        let req = read_request(&mut Cursor::new("GET /stats HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",                                      // no version
            "GET / SPDY/3\r\n\r\n",                               // wrong protocol
            "GET / HTTP/1.1\r\nbroken header\r\n\r\n",            // no colon
            "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",       // bad length
            "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", // truncated body
        ] {
            assert!(
                read_request(&mut Cursor::new(bad)).is_err(),
                "accepted {bad:?}"
            );
        }
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        let err = read_request(&mut Cursor::new(huge)).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        respond(
            &mut wire,
            400,
            "Bad Request",
            "application/json",
            "{\"e\":1}",
        )
        .unwrap();
        let (status, body) = read_response(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 400);
        assert_eq!(body, "{\"e\":1}");
    }

    #[test]
    fn streamed_response_reads_to_eof() {
        let mut wire = Vec::new();
        start_streaming(&mut wire, "text/plain").unwrap();
        wire.extend_from_slice(b"# progress\n\nresult");
        let (status, body) = read_response(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "# progress\n\nresult");
    }
}
