//! Minimal HTTP/1.1 plumbing for the evaluation service.
//!
//! The workspace is offline, so the wire layer is hand-rolled over
//! `std::net`: enough HTTP/1.1 to serve `curl` and the bundled client —
//! request line, headers, `Content-Length` bodies, `Connection: close`
//! responses. Responses stream: progress lines flush as the job executes
//! (`Transfer-Encoding` is avoided by closing the connection to delimit
//! the body, which every HTTP/1.1 client understands). Deliberately *not*
//! a web framework: no keep-alive, no chunked encoding, no routing table
//! — the service has a handful of endpoints.
//!
//! Sockets carry read/write deadlines (set by the server before parsing):
//! a stalled or slow-loris client surfaces as [`ReadError::Timeout`],
//! which the server answers with `408` instead of pinning a connection
//! worker forever.

use std::io::{BufRead, Write};

/// Largest accepted request body. A job spec is a few hundred bytes; a
/// megabyte bound keeps a misbehaving client from ballooning the server.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, path (query split off), body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target without the query string (`/jobs`, `/stats`).
    pub path: String,
    /// Raw query string after `?` (empty when absent). The service's
    /// only query knob is `wait=1`; see [`Request::query_flag`].
    pub query: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// True when the query string carries `name=1` (exact token match —
    /// `wait=2` or `wait` alone is not a flag).
    pub fn query_flag(&self, name: &str) -> bool {
        self.query
            .split('&')
            .any(|kv| kv.strip_prefix(name).and_then(|r| r.strip_prefix('=')) == Some("1"))
    }
}

/// Why a request could not be read. The server's answer differs per
/// variant: `Closed` is silence (the client never sent anything worth
/// diagnosing), `Timeout` is `408`, `Malformed` is `400`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// Clean EOF before any request byte — the client connected and hung
    /// up (health probes and port scans do this); nothing to answer.
    Closed,
    /// The socket's read deadline expired mid-request (slow-loris or a
    /// stalled client).
    Timeout,
    /// The bytes that did arrive are not a valid request; the payload is
    /// the client-facing diagnostic.
    Malformed(String),
}

fn io_read_error(context: &str, e: &std::io::Error) -> ReadError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ReadError::Timeout,
        _ => ReadError::Malformed(format!("{context}: {e}")),
    }
}

/// Read one request off `r`.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ReadError> {
    let mut line = String::new();
    let n = r
        .read_line(&mut line)
        .map_err(|e| io_read_error("reading request line", &e))?;
    if n == 0 {
        return Err(ReadError::Closed);
    }
    let malformed = |m: String| ReadError::Malformed(m);
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| malformed("request line missing path".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let version = parts
        .next()
        .ok_or_else(|| malformed("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported protocol {version:?}")));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)
            .map_err(|e| io_read_error("reading header", &e))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(malformed(format!("malformed header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed(format!("bad Content-Length {value:?}")))?;
            if content_length > MAX_BODY_BYTES {
                return Err(malformed(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(r, &mut body)
            .map_err(|e| io_read_error(&format!("reading {content_length}-byte body"), &e))?;
    }
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Write a complete response with a known body.
pub fn respond<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_with_headers(w, status, reason, content_type, &[], body)
}

/// [`respond`] with extra headers (`Retry-After`, `Location`, ...), each
/// a `(name, value)` pair.
pub fn respond_with_headers<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n{body}")?;
    w.flush()
}

/// Start a streaming response: status and headers only, no
/// `Content-Length` — the connection close delimits the body. The caller
/// writes (and flushes) body text as it becomes available.
pub fn start_streaming<W: Write>(w: &mut W, content_type: &str) -> std::io::Result<()> {
    start_streaming_with_headers(w, content_type, &[])
}

/// [`start_streaming`] with extra headers (`X-Job-Id`, ...).
pub fn start_streaming_with_headers<W: Write>(
    w: &mut W,
    content_type: &str,
    extra: &[(&str, String)],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n"
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.flush()
}

/// A parsed response with the headers the client cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Retry-After` in seconds, when the server sent one (the overload
    /// answers do) and it parsed as an integer.
    pub retry_after: Option<u64>,
    /// Body text.
    pub body: String,
}

/// Parse a response off `r`. Reads to EOF when no `Content-Length` is
/// present (the server's streaming mode).
pub fn read_response_meta<R: BufRead>(r: &mut R) -> Result<Response, String> {
    let mut line = String::new();
    r.read_line(&mut line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            std::io::Read::read_exact(r, &mut body)
                .map_err(|e| format!("reading {n}-byte body: {e}"))?;
        }
        None => {
            std::io::Read::read_to_end(r, &mut body)
                .map_err(|e| format!("reading streamed body: {e}"))?;
        }
    }
    let body = String::from_utf8(body).map_err(|_| "response body is not UTF-8".to_owned())?;
    Ok(Response {
        status,
        retry_after,
        body,
    })
}

/// Parse a response off `r`: `(status, body)`.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<(u16, String), String> {
    read_response_meta(r).map(|r| (r.status, r.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body() {
        let req = read_request(&mut Cursor::new("GET /stats HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn splits_query_and_matches_flags_exactly() {
        let req = read_request(&mut Cursor::new("POST /jobs?wait=1&x=2 HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "wait=1&x=2");
        assert!(req.query_flag("wait"));
        assert!(!req.query_flag("x"));
        for not_a_flag in ["/jobs?wait=2", "/jobs?wait", "/jobs?await=1", "/jobs"] {
            let raw = format!("POST {not_a_flag} HTTP/1.1\r\n\r\n");
            let req = read_request(&mut Cursor::new(raw)).unwrap();
            assert!(!req.query_flag("wait"), "{not_a_flag}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",                                      // no version
            "GET / SPDY/3\r\n\r\n",                               // wrong protocol
            "GET / HTTP/1.1\r\nbroken header\r\n\r\n",            // no colon
            "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",       // bad length
            "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", // truncated body
        ] {
            assert!(
                matches!(
                    read_request(&mut Cursor::new(bad)),
                    Err(ReadError::Malformed(_))
                ),
                "accepted {bad:?}"
            );
        }
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        match read_request(&mut Cursor::new(huge)) {
            Err(ReadError::Malformed(m)) => assert!(m.contains("exceeds"), "{m}"),
            other => panic!("accepted oversized body: {other:?}"),
        }
        // Clean EOF before any byte is Closed, not Malformed — the
        // server drops it silently.
        assert_eq!(read_request(&mut Cursor::new("")), Err(ReadError::Closed));
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        respond(
            &mut wire,
            400,
            "Bad Request",
            "application/json",
            "{\"e\":1}",
        )
        .unwrap();
        let (status, body) = read_response(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 400);
        assert_eq!(body, "{\"e\":1}");
    }

    #[test]
    fn extra_headers_round_trip() {
        let mut wire = Vec::new();
        respond_with_headers(
            &mut wire,
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", "5".to_owned())],
            "{}",
        )
        .unwrap();
        let resp = read_response_meta(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(5));
        assert_eq!(resp.body, "{}");
    }

    #[test]
    fn streamed_response_reads_to_eof() {
        let mut wire = Vec::new();
        start_streaming(&mut wire, "text/plain").unwrap();
        wire.extend_from_slice(b"# progress\n\nresult");
        let (status, body) = read_response(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "# progress\n\nresult");
    }
}
