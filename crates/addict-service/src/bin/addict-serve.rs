//! `addict-serve`: the resident evaluation server.
//!
//! ```text
//! addict-serve [--addr HOST:PORT] [--workers N] [--job-workers N]
//!              [--cache-bytes N] [--queue N] [--result-bytes N]
//!              [--io-timeout-ms N] [--dump-dir PATH]
//! ```
//!
//! Binds (default `127.0.0.1:7171`), prints the bound address, and
//! serves until `POST /shutdown` drains it (results are persisted to
//! `--dump-dir` on the way out, when set). See SERVICE.md for the
//! protocol and failure semantics.

use addict_service::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let value = |it: &mut dyn Iterator<Item = &String>, flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        let positive = |v: &str, flag: &str| -> usize {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("error: {flag} requires a positive integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        };
        match a.as_str() {
            "--addr" => addr = value(&mut it, "--addr"),
            "--workers" => config.workers = positive(&value(&mut it, "--workers"), "--workers"),
            "--job-workers" => {
                config.job_workers = positive(&value(&mut it, "--job-workers"), "--job-workers");
            }
            "--cache-bytes" => {
                config.cache_budget = positive(&value(&mut it, "--cache-bytes"), "--cache-bytes");
            }
            "--queue" => config.queue_cap = positive(&value(&mut it, "--queue"), "--queue"),
            "--result-bytes" => {
                config.result_budget =
                    positive(&value(&mut it, "--result-bytes"), "--result-bytes");
            }
            "--io-timeout-ms" => {
                // 0 is meaningful here: no deadline.
                let v = value(&mut it, "--io-timeout-ms");
                config.io_timeout_ms = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --io-timeout-ms requires an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--dump-dir" => {
                config.dump_dir = Some(value(&mut it, "--dump-dir").into());
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!(
                    "usage: addict-serve [--addr HOST:PORT] [--workers N] [--job-workers N] [--cache-bytes N] [--queue N] [--result-bytes N] [--io-timeout-ms N] [--dump-dir PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let server = Server::bind(&addr, config.clone()).unwrap_or_else(|e| {
        eprintln!("error: binding {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr().expect("bound listener has an address");
    if server.recovered_results() > 0 {
        println!(
            "addict-serve recovered {} dumped result(s) from {}",
            server.recovered_results(),
            config
                .dump_dir
                .as_deref()
                .expect("recovery implies --dump-dir")
                .display()
        );
    }
    println!(
        "addict-serve listening on {bound} ({} connection workers, {} job executors, {} MiB trace cache)",
        config.workers,
        config.job_workers,
        config.cache_budget >> 20
    );
    if let Err(e) = server.serve() {
        eprintln!("error: serving: {e}");
        std::process::exit(1);
    }
    println!("addict-serve drained; exiting");
}
