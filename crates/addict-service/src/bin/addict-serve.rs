//! `addict-serve`: the resident evaluation server.
//!
//! ```text
//! addict-serve [--addr HOST:PORT] [--workers N] [--cache-bytes N]
//! ```
//!
//! Binds (default `127.0.0.1:7171`), prints the bound address, and
//! serves until killed. See SERVICE.md for the protocol.

use addict_service::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let value = |it: &mut dyn Iterator<Item = &String>, flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        let positive = |v: &str, flag: &str| -> usize {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("error: {flag} requires a positive integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        };
        match a.as_str() {
            "--addr" => addr = value(&mut it, "--addr"),
            "--workers" => config.workers = positive(&value(&mut it, "--workers"), "--workers"),
            "--cache-bytes" => {
                config.cache_budget = positive(&value(&mut it, "--cache-bytes"), "--cache-bytes");
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: addict-serve [--addr HOST:PORT] [--workers N] [--cache-bytes N]");
                std::process::exit(2);
            }
        }
    }

    let server = Server::bind(&addr, config).unwrap_or_else(|e| {
        eprintln!("error: binding {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr().expect("bound listener has an address");
    println!(
        "addict-serve listening on {bound} ({} workers, {} MiB trace cache)",
        config.workers,
        config.cache_budget >> 20
    );
    if let Err(e) = server.serve() {
        eprintln!("error: serving: {e}");
        std::process::exit(1);
    }
}
