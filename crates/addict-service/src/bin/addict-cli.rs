//! `addict-cli`: submit evaluation jobs and render the results.
//!
//! ```text
//! addict-cli submit <job.json> [--addr HOST:PORT] [--out result.json]
//!                              [--retry N] [--detach]
//! addict-cli poll   <job-id>   [--addr HOST:PORT] [--out result.json]
//! addict-cli cancel <job-id>   [--addr HOST:PORT]
//! addict-cli batch  <job.json> [--out result.json]
//! addict-cli stats  [--addr HOST:PORT]
//! addict-cli shutdown [--addr HOST:PORT]
//! ```
//!
//! `submit` posts the job to a resident `addict-serve`; `batch` executes
//! the *same* spec in-process through the same job layer (no server) —
//! the two produce byte-identical result JSON, which makes `batch` the
//! reference comparator for the service. `--retry N` retries retryable
//! failures (connect errors, 408/429/5xx) with exponential backoff and
//! jitter, honoring the server's `Retry-After`. `--detach` returns the
//! job id immediately; `poll` follows it to completion later (surviving
//! client restarts — the server keeps the result). `stats` dumps the
//! server's counters; `shutdown` asks it to drain and exit.

use std::io::Write as _;

use addict_bench::{run_job, JobSpec, TracePool};
use addict_service::{
    cancel_job, get, poll_job, render_table, shutdown, submit, submit_detached, submit_with_retry,
};

const DEFAULT_ADDR: &str = "127.0.0.1:7171";
/// First backoff step for `--retry` (doubles per attempt).
const RETRY_BASE_MS: u64 = 250;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn usage() -> ! {
    eprintln!(
        "usage: addict-cli submit <job.json> [--addr HOST:PORT] [--out result.json] [--retry N] [--detach]"
    );
    eprintln!("       addict-cli poll   <job-id>   [--addr HOST:PORT] [--out result.json]");
    eprintln!("       addict-cli cancel <job-id>   [--addr HOST:PORT]");
    eprintln!("       addict-cli batch  <job.json> [--out result.json]");
    eprintln!("       addict-cli stats  [--addr HOST:PORT]");
    eprintln!("       addict-cli shutdown [--addr HOST:PORT]");
    std::process::exit(2)
}

struct Opts {
    file: Option<String>,
    addr: String,
    out: Option<String>,
    retry: u32,
    detach: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        file: None,
        addr: DEFAULT_ADDR.to_owned(),
        out: None,
        retry: 0,
        detach: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => opts.addr = v.clone(),
                None => fail("--addr requires a value"),
            },
            "--out" => match it.next() {
                Some(v) => opts.out = Some(v.clone()),
                None => fail("--out requires a value"),
            },
            "--retry" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => opts.retry = n,
                _ => fail("--retry requires a non-negative integer"),
            },
            "--detach" => opts.detach = true,
            s if s.starts_with("--") => fail(&format!("unknown flag {s:?}")),
            s => {
                if opts.file.replace(s.to_owned()).is_some() {
                    usage();
                }
            }
        }
    }
    opts
}

fn read_job(opts: &Opts) -> String {
    let path = opts.file.as_deref().unwrap_or_else(|| usage());
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    // Validate client-side too: a typo'd job earns a local diagnosis,
    // not a round trip.
    if let Err(e) = JobSpec::from_json(&text) {
        fail(&format!("{path}: invalid job ({}): {}", e.field, e.message));
    }
    text
}

fn job_id(opts: &Opts) -> u64 {
    let raw = opts.file.as_deref().unwrap_or_else(|| usage());
    raw.parse()
        .unwrap_or_else(|_| fail(&format!("job ids are integers, got {raw:?}")))
}

fn emit(result_json: &str, out: Option<&str>) {
    match render_table(result_json) {
        Ok(table) => print!("{table}"),
        Err(e) => fail(&format!("malformed result: {e}")),
    }
    if let Some(path) = out {
        std::fs::write(path, result_json).unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
        println!("result written to {path}");
    }
}

fn progress_line(line: &str) {
    eprintln!("  {line}");
    let _ = std::io::stderr().flush();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1) else { usage() };
    let opts = parse_opts(&args[2..]);
    match command.as_str() {
        "submit" => {
            let job = read_job(&opts);
            if opts.detach {
                let id = submit_detached(opts.addr.as_str(), &job).unwrap_or_else(|e| fail(&e));
                println!("{id}");
                eprintln!("job {id} accepted; follow it with: addict-cli poll {id}");
                return;
            }
            let result = if opts.retry > 0 {
                submit_with_retry(
                    opts.addr.as_str(),
                    &job,
                    opts.retry,
                    RETRY_BASE_MS,
                    progress_line,
                    |attempt, delay_ms, error| {
                        eprintln!("retry {attempt}/{} in {delay_ms} ms: {error}", opts.retry);
                    },
                )
            } else {
                submit(opts.addr.as_str(), &job, progress_line)
            }
            .unwrap_or_else(|e| fail(&e));
            emit(&result, opts.out.as_deref());
        }
        "poll" => {
            let id = job_id(&opts);
            let result =
                poll_job(opts.addr.as_str(), id, progress_line).unwrap_or_else(|e| fail(&e));
            emit(&result, opts.out.as_deref());
        }
        "cancel" => {
            let id = job_id(&opts);
            let ack = cancel_job(opts.addr.as_str(), id).unwrap_or_else(|e| fail(&e));
            print!("{ack}");
        }
        "batch" => {
            // The in-process reference path: same spec, same executor,
            // fresh single-job trace pool.
            let job = read_job(&opts);
            let spec = JobSpec::from_json(&job).expect("validated above");
            let pool = TracePool::unbounded();
            let result = run_job(&spec, &pool, &|line: &str| eprintln!("  {line}"))
                .unwrap_or_else(|e| fail(&format!("job failed ({}): {}", e.field, e.message)));
            emit(&result.to_json(), opts.out.as_deref());
        }
        "stats" => {
            if opts.file.is_some() {
                usage();
            }
            let body = get(opts.addr.as_str(), "/stats").unwrap_or_else(|e| fail(&e));
            print!("{body}");
        }
        "shutdown" => {
            if opts.file.is_some() {
                usage();
            }
            let ack = shutdown(opts.addr.as_str()).unwrap_or_else(|e| fail(&e));
            print!("{ack}");
        }
        _ => usage(),
    }
}
