//! `addict-cli`: submit evaluation jobs and render the results.
//!
//! ```text
//! addict-cli submit <job.json> [--addr HOST:PORT] [--out result.json]
//! addict-cli batch  <job.json> [--out result.json]
//! addict-cli stats  [--addr HOST:PORT]
//! ```
//!
//! `submit` posts the job to a resident `addict-serve`; `batch` executes
//! the *same* spec in-process through the same job layer (no server) —
//! the two produce byte-identical result JSON, which makes `batch` the
//! reference comparator for the service. `stats` dumps the server's
//! cache counters.

use std::io::Write as _;

use addict_bench::{run_job, JobSpec, TracePool};
use addict_service::{get, render_table, submit};

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn usage() -> ! {
    eprintln!("usage: addict-cli submit <job.json> [--addr HOST:PORT] [--out result.json]");
    eprintln!("       addict-cli batch  <job.json> [--out result.json]");
    eprintln!("       addict-cli stats  [--addr HOST:PORT]");
    std::process::exit(2)
}

struct Opts {
    file: Option<String>,
    addr: String,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        file: None,
        addr: DEFAULT_ADDR.to_owned(),
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => opts.addr = v.clone(),
                None => fail("--addr requires a value"),
            },
            "--out" => match it.next() {
                Some(v) => opts.out = Some(v.clone()),
                None => fail("--out requires a value"),
            },
            s if s.starts_with("--") => fail(&format!("unknown flag {s:?}")),
            s => {
                if opts.file.replace(s.to_owned()).is_some() {
                    usage();
                }
            }
        }
    }
    opts
}

fn read_job(opts: &Opts) -> String {
    let path = opts.file.as_deref().unwrap_or_else(|| usage());
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    // Validate client-side too: a typo'd job earns a local diagnosis,
    // not a round trip.
    if let Err(e) = JobSpec::from_json(&text) {
        fail(&format!("{path}: invalid job ({}): {}", e.field, e.message));
    }
    text
}

fn emit(result_json: &str, out: Option<&str>) {
    match render_table(result_json) {
        Ok(table) => print!("{table}"),
        Err(e) => fail(&format!("malformed result: {e}")),
    }
    if let Some(path) = out {
        std::fs::write(path, result_json).unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
        println!("result written to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1) else { usage() };
    let opts = parse_opts(&args[2..]);
    match command.as_str() {
        "submit" => {
            let job = read_job(&opts);
            let result = submit(&opts.addr, &job, |line| {
                eprintln!("  {line}");
                let _ = std::io::stderr().flush();
            })
            .unwrap_or_else(|e| fail(&e));
            emit(&result, opts.out.as_deref());
        }
        "batch" => {
            // The in-process reference path: same spec, same executor,
            // fresh single-job trace pool.
            let job = read_job(&opts);
            let spec = JobSpec::from_json(&job).expect("validated above");
            let pool = TracePool::unbounded();
            let result = run_job(&spec, &pool, &|line: &str| eprintln!("  {line}"))
                .unwrap_or_else(|e| fail(&format!("job failed ({}): {}", e.field, e.message)));
            emit(&result.to_json(), opts.out.as_deref());
        }
        "stats" => {
            if opts.file.is_some() {
                usage();
            }
            let body = get(&opts.addr, "/stats").unwrap_or_else(|e| fail(&e));
            print!("{body}");
        }
        _ => usage(),
    }
}
