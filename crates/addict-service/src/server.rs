//! The resident evaluation server.
//!
//! Three endpoints over the hand-rolled HTTP layer ([`crate::http`]):
//!
//! * `POST /jobs` — body is a [`JobSpec`] JSON document. Invalid specs
//!   answer `400` with a structured error (`code`/`field`/`message`)
//!   before any work starts; valid jobs stream a `text/plain` response:
//!   `#`-prefixed progress lines as the grid executes, then a blank
//!   line, then the [`JobResult`] JSON — byte-identical to what the
//!   batch path serializes for the same spec.
//! * `GET /stats` — trace-pool cache counters plus the jobs-served
//!   count, as JSON.
//! * `GET /healthz` — liveness probe.
//!
//! One accept loop feeds a bounded channel drained by a fixed pool of
//! connection workers, so a burst of jobs queues instead of spawning
//! unbounded threads (each job may itself fan out over `spec.threads`
//! replay workers — admission stays bounded either way). The
//! [`TracePool`] is shared across all workers: that sharing *is* the
//! point of residency — the second job over a trace range replays
//! immediately instead of re-populating a storage engine.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use addict_bench::jsontext::escape;
use addict_bench::{run_job, JobSpec, SpecError, TracePool};

use crate::http::{read_request, respond, start_streaming, Request};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connection workers (jobs execute on these; each job
    /// may additionally fan out over its spec's `threads`).
    pub workers: usize,
    /// Trace-pool cache budget in bytes ([`TracePool::new`]).
    pub cache_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            cache_budget: 256 << 20,
        }
    }
}

struct State {
    pool: TracePool,
    jobs: AtomicU64,
}

/// A bound, not-yet-serving evaluation server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<State>,
}

/// The structured error body every non-200 answer carries.
fn error_json(code: &str, field: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":\"{}\",\"field\":\"{}\",\"message\":\"{}\"}}}}",
        escape(code),
        escape(field),
        escape(message)
    )
}

impl Server {
    /// Bind to `addr` (port 0 picks an ephemeral port — the tests' mode).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
            state: Arc::new(State {
                pool: TracePool::new(config.cache_budget),
                jobs: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve forever: accept connections and hand them to the worker
    /// pool. Never returns under normal operation — run it on a
    /// dedicated thread.
    pub fn serve(self) -> std::io::Result<()> {
        let workers = self.config.workers.max(1);
        // A small admission queue: a burst beyond workers + backlog
        // blocks the accept loop (and ultimately the clients' connects)
        // instead of growing without bound.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|s| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                s.spawn(move || {
                    loop {
                        let stream = match rx.lock().expect("connection queue lock").recv() {
                            Ok(stream) => stream,
                            Err(_) => break, // accept loop gone
                        };
                        handle_connection(stream, &state);
                    }
                });
            }
            for stream in self.listener.incoming() {
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        eprintln!("accept error: {e}");
                    }
                }
            }
            drop(tx);
            Ok(())
        })
    }
}

/// Serve one connection: parse, route, answer. All errors are answered
/// on the wire; I/O failures mid-response mean the client hung up, which
/// is its prerogative.
fn handle_connection(stream: TcpStream, state: &State) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(e) => {
            let _ = respond(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                &error_json("bad_request", "request", &e),
            );
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => handle_job(&request, writer, state),
        ("GET", "/stats") => {
            let _ = respond(
                &mut writer,
                200,
                "OK",
                "application/json",
                &stats_json(state),
            );
        }
        ("GET", "/healthz") => {
            let _ = respond(&mut writer, 200, "OK", "text/plain", "ok\n");
        }
        (_, path) => {
            let _ = respond(
                &mut writer,
                404,
                "Not Found",
                "application/json",
                &error_json("not_found", "path", &format!("no route for {path}")),
            );
        }
    }
}

/// The `/stats` payload: jobs served plus the cache counter snapshot.
fn stats_json(state: &State) -> String {
    let c = state.pool.stats();
    format!(
        "{{\"jobs\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"generations\":{},\"evictions\":{},\"entries\":{},\"resident_bytes\":{},\"budget_bytes\":{}}}}}\n",
        state.jobs.load(Ordering::Relaxed),
        c.hits,
        c.misses,
        c.generations,
        c.evictions,
        c.entries,
        c.resident_bytes,
        c.budget_bytes,
    )
}

fn handle_job(request: &Request, mut writer: TcpStream, state: &State) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            let _ = respond(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                &error_json("invalid_spec", "spec", "job body is not UTF-8"),
            );
            return;
        }
    };
    // Parse + validate *before* committing to a 200: a malformed or
    // invalid spec (n_xcts 0, no benchmarks, unknown names...) is a
    // structured 400, never a half-streamed failure.
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(SpecError { field, message }) => {
            let _ = respond(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                &error_json("invalid_spec", field, &message),
            );
            return;
        }
    };

    if start_streaming(&mut writer, "text/plain").is_err() {
        return;
    }
    // Progress lines arrive from the job's replay workers concurrently;
    // serialize them onto the socket. A client that hangs up mid-job
    // just stops receiving — the job itself runs to completion (its
    // traces stay cached for the retry).
    let shared = Mutex::new(writer);
    let progress = |line: &str| {
        let mut w = shared.lock().expect("progress writer lock");
        let _ = writeln!(w, "# {line}");
        let _ = w.flush();
    };
    let result = run_job(&spec, &state.pool, &progress);
    state.jobs.fetch_add(1, Ordering::Relaxed);
    let mut writer = shared.into_inner().expect("progress writer lock");
    match result {
        Ok(result) => {
            let _ = write!(writer, "\n{}", result.to_json());
        }
        Err(e) => {
            // Unreachable in practice (the spec was validated above),
            // but never leave a client hanging without a diagnosis.
            let _ = write!(writer, "\n# job failed: {e}\n");
        }
    }
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_body_is_valid_json() {
        use addict_bench::jsontext::JsonValue;
        let body = error_json("invalid_spec", "n_xcts", "must be \"positive\"");
        let doc = JsonValue::parse(&body).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("field").unwrap().as_str("field").unwrap(), "n_xcts");
        assert_eq!(
            err.get("message").unwrap().as_str("message").unwrap(),
            "must be \"positive\""
        );
    }

    #[test]
    fn stats_body_is_valid_json() {
        use addict_bench::jsontext::JsonValue;
        let state = State {
            pool: TracePool::unbounded(),
            jobs: AtomicU64::new(3),
        };
        let doc = JsonValue::parse(stats_json(&state).trim()).unwrap();
        assert_eq!(doc.get("jobs").unwrap().as_u64("jobs").unwrap(), 3);
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64("hits").unwrap(), 0);
        assert_eq!(
            cache
                .get("budget_bytes")
                .unwrap()
                .as_u64("budget_bytes")
                .unwrap(),
            u64::MAX
        );
    }
}
