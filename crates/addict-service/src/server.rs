//! The resident evaluation server.
//!
//! Endpoints over the hand-rolled HTTP layer ([`crate::http`]):
//!
//! * `POST /jobs` — body is a [`JobSpec`] JSON document. Invalid specs
//!   answer `400` (structured `code`/`field`/`message`); admission
//!   overload answers `429`/`503` with `Retry-After` *before* any trace
//!   generation starts — the hint derives from the registry's EWMA of
//!   observed job latency ([`Registry::retry_after`]), falling back to
//!   fixed constants until a first job completes. An admitted job detaches by default: `202` with
//!   the job id and a `Location` header. With `?wait=1` the connection
//!   stays open and streams `text/plain`: `#`-prefixed progress lines as
//!   the grid executes, then a blank line, then the
//!   [`JobResult`](addict_bench::JobResult) JSON — byte-identical to the
//!   batch path and to the stored result `GET /jobs/<id>/result` serves.
//! * `GET /jobs` — id → state listing. `GET /jobs/<id>` — status/progress
//!   snapshot. `GET /jobs/<id>/result` — the stored result bytes.
//!   `DELETE /jobs/<id>` — cooperative cancel (idempotent).
//! * `POST /shutdown` — drain: refuse new admissions, finish admitted
//!   jobs, then `serve` returns (persisting results when
//!   [`ServerConfig::dump_dir`] is set).
//! * `GET /stats` — job/lifecycle/result/cache counters. `GET /healthz`
//!   — liveness probe (answers even while draining).
//!
//! Two fixed pools share the work: **connection workers** parse and
//! route requests (sockets carry read/write deadlines, so a stalled
//! client costs one worker at most [`ServerConfig::io_timeout_ms`]), and
//! **job executors** drain the admission queue through
//! [`run_job_with`] under `catch_unwind` — a panicking job answers a
//! structured `500` and the executor survives. The [`TracePool`] is
//! shared across all executors: that sharing *is* the point of residency
//! — the second job over a trace range replays immediately instead of
//! re-populating a storage engine.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use addict_bench::jsontext::escape;
use addict_bench::{run_job_with, JobError, JobSpec, SpecError, TraceKey, TracePool};

use crate::faults::FaultPlan;
use crate::http::{
    read_request, respond, respond_with_headers, start_streaming_with_headers, ReadError, Request,
};
use crate::jobs::{AdmitError, JobId, JobState, Outcome, Registry, RegistryConfig, ResultFetch};

/// Per-grid-point admission surcharge: beyond its trace ranges, each
/// point a spec fans out to (benchmarks × schedulers × batch sizes)
/// costs working and result bytes — so a wide `batch_sizes` grid over
/// warm traces still reserves more than a narrow one.
const POINT_RESULT_BYTES: usize = 512;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection workers (request parsing, routing, streaming).
    pub workers: usize,
    /// Job executors (each job may additionally fan out over its spec's
    /// `threads` replay workers).
    pub job_workers: usize,
    /// Trace-pool cache budget in bytes ([`TracePool::new`]) — also the
    /// admission ledger's reservation budget.
    pub cache_budget: usize,
    /// Maximum queued (admitted, not yet running) jobs; beyond it,
    /// `429`.
    pub queue_cap: usize,
    /// Result-store byte budget (completed result JSON kept for
    /// polling).
    pub result_budget: usize,
    /// Maximum retained job records (oldest terminal records evict).
    pub max_records: usize,
    /// Socket read/write deadline in milliseconds (0 = none). A request
    /// that does not arrive within it answers `408`.
    pub io_timeout_ms: u64,
    /// When set, a graceful shutdown writes every completed result to
    /// `<dump_dir>/job_<id>.json` before `serve` returns — and
    /// [`Server::bind`] recovers results found there into the registry,
    /// so they stay pollable at their original ids across a restart.
    pub dump_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            job_workers: 2,
            cache_budget: 256 << 20,
            queue_cap: 32,
            result_budget: 64 << 20,
            max_records: 512,
            io_timeout_ms: 10_000,
            dump_dir: None,
        }
    }
}

struct State {
    pool: TracePool,
    registry: Registry,
    faults: FaultPlan,
}

/// A bound, not-yet-serving evaluation server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<State>,
    recovered: usize,
}

/// A handle onto a server's shared state, usable while (and after)
/// `serve` runs — the chaos tests' fault-injection surface.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// The fault plan (stalls, worker panics).
    pub fn faults(&self) -> &FaultPlan {
        &self.state.faults
    }

    /// Arm the trace pool's next `n` generations to fail
    /// ([`TracePool::fail_next_generations`]).
    pub fn fail_next_generations(&self, n: u32) {
        self.state.pool.fail_next_generations(n);
    }
}

/// The structured error body every non-200 answer carries.
fn error_json(code: &str, field: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":\"{}\",\"field\":\"{}\",\"message\":\"{}\"}}}}",
        escape(code),
        escape(field),
        escape(message)
    )
}

impl Server {
    /// Bind to `addr` (port 0 picks an ephemeral port — the tests'
    /// mode). When [`ServerConfig::dump_dir`] is set, results a
    /// previous process dumped there are recovered into the registry
    /// before the first request can arrive.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let registry = Registry::new(RegistryConfig {
            admission_budget: config.cache_budget,
            max_queued: config.queue_cap.max(1),
            result_budget: config.result_budget,
            max_records: config.max_records.max(1),
        });
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(State {
            pool: TracePool::new(config.cache_budget),
            registry,
            faults: FaultPlan::new(),
        });
        let recovered = match &config.dump_dir {
            Some(dir) => recover_dumped(&state, dir),
            None => 0,
        };
        Ok(Server {
            listener,
            state,
            config,
            recovered,
        })
    }

    /// Completed results recovered from [`ServerConfig::dump_dir`] at
    /// bind time, pollable at their original ids.
    pub fn recovered_results(&self) -> usize {
        self.recovered
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shared-state handle (grab it before [`Server::serve`] consumes
    /// the server).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until drained: accept connections into the connection-worker
    /// pool while the executor pool drains the job queue. Returns after
    /// a graceful shutdown (`POST /shutdown`) finishes every admitted
    /// job — run it on a dedicated thread.
    pub fn serve(self) -> std::io::Result<()> {
        let Server {
            listener,
            config,
            state,
            recovered: _,
        } = self;
        let addr = listener.local_addr()?;
        std::thread::scope(|s| {
            for _ in 0..config.job_workers.max(1) {
                let state = Arc::clone(&state);
                s.spawn(move || executor_loop(&state, addr));
            }
            // A small admission queue for raw connections: a burst
            // beyond workers + backlog blocks the accept loop (and
            // ultimately the clients' connects) instead of spawning
            // unbounded threads.
            let workers = config.workers.max(1);
            let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * 2);
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let config = &config;
                s.spawn(move || {
                    loop {
                        let stream = match rx.lock().expect("connection queue lock").recv() {
                            Ok(stream) => stream,
                            Err(_) => break, // accept loop gone
                        };
                        handle_connection(stream, &state, config, addr);
                    }
                });
            }
            for stream in listener.incoming() {
                // The drain's last finisher pokes the loop awake with a
                // dummy connection; re-check before dispatching.
                if state.registry.drained() {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        eprintln!("accept error: {e}");
                    }
                }
            }
            drop(tx);
        });
        if let Some(dir) = &config.dump_dir {
            dump_results(&state, dir);
        }
        Ok(())
    }
}

/// Wake the accept loop (it blocks in `accept`) so it can observe a
/// completed drain and exit.
fn poke_accept_loop(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// Boot-time recovery: re-load every `<dir>/job_<id>.json` a previous
/// process dumped into the registry, in id order, so completed results
/// survive a restart and stay pollable at their original ids. Each dump
/// embeds its spec verbatim on the `"spec": {...},` line
/// ([`JobResult::to_json`](addict_bench::JobResult::to_json) writes
/// [`JobSpec::to_json`] there), which rebuilds the full job record.
/// Files that don't parse are skipped with a warning, never a failed
/// boot.
fn recover_dumped(state: &State, dir: &std::path::Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0; // absent or unreadable dir: nothing dumped yet
    };
    let mut files: Vec<(JobId, PathBuf)> = entries
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let id = name
                .strip_prefix("job_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((id, path))
        })
        .collect();
    files.sort();
    let mut recovered = 0;
    for (id, path) in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("boot recovery: unreadable {}; skipping", path.display());
            continue;
        };
        let spec = text
            .lines()
            .find_map(|line| line.trim_start().strip_prefix("\"spec\": "))
            .and_then(|rest| JobSpec::from_json(rest.trim_end().trim_end_matches(',')).ok());
        let Some(spec) = spec else {
            eprintln!(
                "boot recovery: no parsable spec in {}; skipping",
                path.display()
            );
            continue;
        };
        if state.registry.recover(id, spec, text) {
            recovered += 1;
        }
    }
    recovered
}

/// Persist every completed result to `<dir>/job_<id>.json`.
fn dump_results(state: &State, dir: &std::path::Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("shutdown dump: creating {}: {e}", dir.display());
        return;
    }
    for (id, bytes) in state.registry.done_results() {
        let path = dir.join(format!("job_{id}.json"));
        if let Err(e) = std::fs::write(&path, bytes.as_bytes()) {
            eprintln!("shutdown dump: writing {}: {e}", path.display());
        }
    }
}

/// Human-readable panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One executor: claim queued jobs, run them contained, finalize. Exits
/// when the registry drains.
fn executor_loop(state: &State, addr: SocketAddr) {
    while let Some((id, spec, token)) = state.registry.next_job() {
        let outcome = match token.check() {
            // Cancelled or deadline-expired while queued: finalize
            // without touching the pool.
            Err(interrupt) => Outcome::Interrupted(interrupt),
            Ok(()) => {
                let progress = |line: &str| {
                    state.faults.on_progress();
                    state.registry.progress(id, line);
                };
                // catch_unwind contains both injected and genuine
                // panics: the job fails structurally, the executor
                // survives at full pool strength, and the trace pool's
                // pending-slot guard has already cleared any in-flight
                // generation slot.
                let run = catch_unwind(AssertUnwindSafe(|| {
                    if state.faults.take_job_panic() {
                        panic!("injected worker panic");
                    }
                    run_job_with(&spec, &state.pool, &progress, &token)
                }));
                match run {
                    Ok(Ok(result)) => Outcome::Done(result.to_json()),
                    Ok(Err(JobError::Interrupted(interrupt))) => Outcome::Interrupted(interrupt),
                    Ok(Err(JobError::Spec(e))) => {
                        // Unreachable in practice: admission validated
                        // the spec. Still a structured failure.
                        Outcome::Failed(format!("invalid spec ({}): {}", e.field, e.message))
                    }
                    Err(payload) => {
                        Outcome::Failed(format!("worker panic: {}", panic_text(payload.as_ref())))
                    }
                }
            }
        };
        if state.registry.finish(id, outcome) {
            poke_accept_loop(addr);
        }
    }
}

/// Serve one connection: parse, route, answer. All errors are answered
/// on the wire; I/O failures mid-response mean the client hung up, which
/// is its prerogative.
fn handle_connection(stream: TcpStream, state: &State, config: &ServerConfig, addr: SocketAddr) {
    let io_timeout = match config.io_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    if stream.set_read_timeout(io_timeout).is_err() || stream.set_write_timeout(io_timeout).is_err()
    {
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(ReadError::Closed) => return, // probe/scan: nothing to say
        Err(ReadError::Timeout) => {
            let _ = respond(
                &mut writer,
                408,
                "Request Timeout",
                "application/json",
                &error_json(
                    "timeout",
                    "request",
                    "request did not arrive within the read deadline",
                ),
            );
            return;
        }
        Err(ReadError::Malformed(e)) => {
            let _ = respond(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                &error_json("bad_request", "request", &e),
            );
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => handle_submit(&request, writer, state),
        ("GET", "/jobs") => {
            let _ = respond(
                &mut writer,
                200,
                "OK",
                "application/json",
                &list_json(state),
            );
        }
        ("GET", "/stats") => {
            let _ = respond(
                &mut writer,
                200,
                "OK",
                "application/json",
                &stats_json(state),
            );
        }
        ("GET", "/healthz") => {
            let _ = respond(&mut writer, 200, "OK", "text/plain", "ok\n");
        }
        ("POST", "/shutdown") => {
            let (drained_now, running, queued) = state.registry.begin_drain();
            let _ = respond(
                &mut writer,
                200,
                "OK",
                "application/json",
                &format!("{{\"draining\":true,\"running\":{running},\"queued\":{queued}}}\n"),
            );
            if drained_now {
                poke_accept_loop(addr);
            }
        }
        (method, path) if path.starts_with("/jobs/") => {
            handle_job_entity(method, path, writer, state);
        }
        (_, path) => {
            let _ = respond(
                &mut writer,
                404,
                "Not Found",
                "application/json",
                &error_json("not_found", "path", &format!("no route for {path}")),
            );
        }
    }
}

/// `/jobs/<id>` and `/jobs/<id>/result`.
fn handle_job_entity(method: &str, path: &str, mut writer: TcpStream, state: &State) {
    let rest = path.strip_prefix("/jobs/").expect("checked by the router");
    let (id_text, sub) = match rest.split_once('/') {
        Some((id, sub)) => (id, Some(sub)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<JobId>() else {
        let _ = respond(
            &mut writer,
            404,
            "Not Found",
            "application/json",
            &error_json(
                "not_found",
                "job",
                &format!("job ids are integers, got {id_text:?}"),
            ),
        );
        return;
    };
    match (method, sub) {
        ("GET", None) => handle_status(id, writer, state),
        ("GET", Some("result")) => handle_result(id, writer, state),
        ("DELETE", None) => handle_cancel(id, writer, state),
        _ => {
            let _ = respond(
                &mut writer,
                404,
                "Not Found",
                "application/json",
                &error_json(
                    "not_found",
                    "path",
                    &format!("no route for {method} {path}"),
                ),
            );
        }
    }
}

/// Status code, reason, and error code for a job that ended without a
/// result — the "Failure semantics" table in SERVICE.md.
fn terminal_error(state: JobState) -> (u16, &'static str, &'static str) {
    match state {
        JobState::Cancelled => (409, "Conflict", "cancelled"),
        JobState::DeadlineExceeded => (504, "Gateway Timeout", "deadline_exceeded"),
        _ => (500, "Internal Server Error", "job_failed"),
    }
}

fn handle_status(id: JobId, mut writer: TcpStream, state: &State) {
    let Some(snap) = state.registry.snapshot(id) else {
        let _ = respond(
            &mut writer,
            404,
            "Not Found",
            "application/json",
            &error_json("not_found", "job", &format!("no job {id}")),
        );
        return;
    };
    let progress: Vec<String> = snap
        .progress
        .iter()
        .map(|l| format!("\"{}\"", escape(l)))
        .collect();
    let body = format!(
        "{{\"id\":{},\"state\":\"{}\",\"cancel_requested\":{},\"error\":{},\"result_fnv64\":{},\"spec\":{},\"progress\":[{}]}}\n",
        snap.id,
        snap.state.id(),
        snap.cancel_requested,
        snap.error
            .as_deref()
            .map_or_else(|| "null".to_owned(), |e| format!("\"{}\"", escape(e))),
        snap.result_fnv64
            .map_or_else(|| "null".to_owned(), |d| format!("\"{d:016x}\"")),
        snap.spec.to_json(),
        progress.join(","),
    );
    let _ = respond(&mut writer, 200, "OK", "application/json", &body);
}

fn handle_result(id: JobId, mut writer: TcpStream, state: &State) {
    match state.registry.result(id) {
        ResultFetch::NotFound => {
            let _ = respond(
                &mut writer,
                404,
                "Not Found",
                "application/json",
                &error_json("not_found", "job", &format!("no job {id}")),
            );
        }
        ResultFetch::NotReady(job_state) => {
            let _ = respond(
                &mut writer,
                409,
                "Conflict",
                "application/json",
                &error_json(
                    "not_ready",
                    "job",
                    &format!("job {id} is {}; poll until done", job_state.id()),
                ),
            );
        }
        ResultFetch::Evicted => {
            let _ = respond(
                &mut writer,
                410,
                "Gone",
                "application/json",
                &error_json(
                    "result_evicted",
                    "job",
                    "result was evicted from the bounded store; resubmit the job (its traces are likely still cached)",
                ),
            );
        }
        ResultFetch::Ended(job_state, error) => {
            let (status, reason, code) = terminal_error(job_state);
            let message = error.unwrap_or_else(|| format!("job ended {}", job_state.id()));
            let _ = respond(
                &mut writer,
                status,
                reason,
                "application/json",
                &error_json(code, "job", &message),
            );
        }
        ResultFetch::Ready(bytes) => {
            let _ = respond(&mut writer, 200, "OK", "application/json", &bytes);
        }
    }
}

fn handle_cancel(id: JobId, mut writer: TcpStream, state: &State) {
    match state.registry.cancel(id) {
        None => {
            let _ = respond(
                &mut writer,
                404,
                "Not Found",
                "application/json",
                &error_json("not_found", "job", &format!("no job {id}")),
            );
        }
        Some(after) => {
            let _ = respond(
                &mut writer,
                200,
                "OK",
                "application/json",
                &format!("{{\"id\":{id},\"state\":\"{}\"}}\n", after.id()),
            );
        }
    }
}

/// Estimate the bytes `spec` will newly pin: the trace footprint model
/// summed over its cache keys — skipping keys already resident
/// (re-running a warm job re-reserves almost nothing — residency is the
/// service's whole point; duplicate profile/eval keys count once) —
/// plus [`POINT_RESULT_BYTES`] per grid point, so admission scales with
/// the spec's `batch_sizes`/scheduler fan-out, not just its trace keys.
fn estimate_new_bytes(spec: &JobSpec, pool: &TracePool) -> usize {
    let mut keys: Vec<TraceKey> = Vec::with_capacity(spec.benchmarks.len() * 2);
    for &bench in &spec.benchmarks {
        for key in [spec.profile_key(bench), spec.eval_key(bench)] {
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    let traces: usize = keys
        .iter()
        .filter(|k| !pool.contains(k))
        .map(TraceKey::estimated_resident_bytes)
        .sum();
    traces + spec.grid_shape().len() * POINT_RESULT_BYTES
}

fn handle_submit(request: &Request, mut writer: TcpStream, state: &State) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            let _ = respond(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                &error_json("invalid_spec", "spec", "job body is not UTF-8"),
            );
            return;
        }
    };
    // Parse + validate *before* admission: a malformed or invalid spec
    // (n_xcts 0, no benchmarks, unknown names...) is a structured 400,
    // never a queued failure.
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(SpecError { field, message }) => {
            let _ = respond(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                &error_json("invalid_spec", field, &message),
            );
            return;
        }
    };

    // Admission: reserve the estimated footprint, or reject *before*
    // any generation starts.
    let estimated = estimate_new_bytes(&spec, &state.pool);
    let id = match state.registry.admit(spec, estimated) {
        Ok(id) => id,
        Err(AdmitError::QueueFull { queued, cap }) => {
            let (retry_queue_s, _) = state.registry.retry_after();
            let _ = respond_with_headers(
                &mut writer,
                429,
                "Too Many Requests",
                "application/json",
                &[("Retry-After", retry_queue_s.to_string())],
                &error_json(
                    "queue_full",
                    "queue",
                    &format!("{queued} jobs queued (cap {cap}); retry shortly"),
                ),
            );
            return;
        }
        Err(AdmitError::OverBudget {
            estimated,
            reserved,
            budget,
        }) => {
            let (_, retry_bytes_s) = state.registry.retry_after();
            let _ = respond_with_headers(
                &mut writer,
                503,
                "Service Unavailable",
                "application/json",
                &[("Retry-After", retry_bytes_s.to_string())],
                &error_json(
                    "over_capacity",
                    "n_xcts",
                    &format!(
                        "job needs ~{estimated} trace bytes but {reserved} of {budget} are reserved; retry after running jobs finish"
                    ),
                ),
            );
            return;
        }
        Err(AdmitError::Draining) => {
            let _ = respond(
                &mut writer,
                503,
                "Service Unavailable",
                "application/json",
                &error_json(
                    "shutting_down",
                    "server",
                    "server is draining; submit elsewhere",
                ),
            );
            return;
        }
    };

    if request.query_flag("wait") {
        stream_job(writer, state, id);
    } else {
        let _ = respond_with_headers(
            &mut writer,
            202,
            "Accepted",
            "application/json",
            &[("Location", format!("/jobs/{id}"))],
            &format!("{{\"id\":{id},\"state\":\"queued\"}}\n"),
        );
    }
}

/// The `?wait=1` path: follow the job through the registry, streaming
/// progress as it lands. The `200` header is deferred until the first
/// progress line, so a job that dies *before* doing any work (panic at
/// start, cancelled in queue, deadline expired) still answers a proper
/// structured status. A client that hangs up mid-stream stops receiving
/// — the job itself runs on, and its stored result stays pollable
/// (detached semantics underneath).
fn stream_job(mut writer: TcpStream, state: &State, id: JobId) {
    let job_header = [("X-Job-Id", id.to_string())];
    let mut seen = 0usize;
    let mut streamed = false;
    loop {
        let Some((lines, job_state, error)) = state.registry.wait_progress(id, seen) else {
            return; // record evicted mid-stream (cap pressure): give up
        };
        seen += lines.len();
        if !lines.is_empty() && !streamed {
            if start_streaming_with_headers(&mut writer, "text/plain", &job_header).is_err() {
                return;
            }
            streamed = true;
        }
        for line in &lines {
            if writeln!(writer, "# {line}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                return; // client hung up; the job runs on
            }
        }
        if !job_state.is_terminal() {
            continue;
        }
        match job_state {
            JobState::Done => {
                let ResultFetch::Ready(bytes) = state.registry.result(id) else {
                    return; // evicted in the instant since finish: poll answers 410
                };
                if !streamed
                    && start_streaming_with_headers(&mut writer, "text/plain", &job_header).is_err()
                {
                    return;
                }
                let _ = write!(writer, "\n{bytes}");
                let _ = writer.flush();
            }
            ended => {
                let (status, reason, code) = terminal_error(ended);
                let message = error.unwrap_or_else(|| format!("job ended {}", ended.id()));
                if streamed {
                    // Headers are gone; a trailer line is the best the
                    // wire allows. The client surfaces it.
                    let _ = writeln!(writer, "# error: {message}");
                    let _ = writer.flush();
                } else {
                    let _ = respond_with_headers(
                        &mut writer,
                        status,
                        reason,
                        "application/json",
                        &job_header,
                        &error_json(code, "job", &message),
                    );
                }
            }
        }
        return;
    }
}

/// The `GET /jobs` payload: id → state, in admission order.
fn list_json(state: &State) -> String {
    let entries: Vec<String> = state
        .registry
        .list()
        .into_iter()
        .map(|(id, s)| format!("{{\"id\":{id},\"state\":\"{}\"}}", s.id()))
        .collect();
    format!("{{\"jobs\":[{}]}}\n", entries.join(","))
}

/// The `/stats` payload: jobs served plus lifecycle, result-store, and
/// cache counters.
fn stats_json(state: &State) -> String {
    let c = state.pool.stats();
    let r = state.registry.stats();
    format!(
        concat!(
            "{{\"jobs\":{},",
            "\"lifecycle\":{{\"queued\":{},\"running\":{},\"done\":{},\"cancelled\":{},\"deadline_exceeded\":{},\"failed\":{},\"records\":{},\"reserved_bytes\":{},\"draining\":{}}},",
            "\"results\":{{\"stored\":{},\"bytes\":{},\"budget_bytes\":{},\"evictions\":{},\"dedups\":{}}},",
            "\"cache\":{{\"hits\":{},\"misses\":{},\"generations\":{},\"evictions\":{},\"entries\":{},\"pinned_entries\":{},\"resident_bytes\":{},\"budget_bytes\":{}}}}}\n",
        ),
        r.done,
        r.queued,
        r.running,
        r.done,
        r.cancelled,
        r.deadline_exceeded,
        r.failed,
        r.records,
        r.reserved_bytes,
        r.draining,
        r.results_stored,
        r.result_bytes,
        r.result_budget,
        r.result_evictions,
        r.result_dedups,
        c.hits,
        c.misses,
        c.generations,
        c.evictions,
        c.entries,
        c.pinned_entries,
        c.resident_bytes,
        c.budget_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_workloads::Benchmark;

    #[test]
    fn error_body_is_valid_json() {
        use addict_bench::jsontext::JsonValue;
        let body = error_json("invalid_spec", "n_xcts", "must be \"positive\"");
        let doc = JsonValue::parse(&body).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("field").unwrap().as_str("field").unwrap(), "n_xcts");
        assert_eq!(
            err.get("message").unwrap().as_str("message").unwrap(),
            "must be \"positive\""
        );
    }

    #[test]
    fn stats_body_is_valid_json() {
        use addict_bench::jsontext::JsonValue;
        let state = State {
            pool: TracePool::unbounded(),
            registry: Registry::new(RegistryConfig {
                admission_budget: usize::MAX,
                max_queued: 4,
                result_budget: 1 << 20,
                max_records: 16,
            }),
            faults: FaultPlan::new(),
        };
        let doc = JsonValue::parse(stats_json(&state).trim()).unwrap();
        assert_eq!(doc.get("jobs").unwrap().as_u64("jobs").unwrap(), 0);
        let lifecycle = doc.get("lifecycle").unwrap();
        assert!(!lifecycle
            .get("draining")
            .unwrap()
            .as_bool("draining")
            .unwrap());
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64("hits").unwrap(), 0);
        assert_eq!(
            cache
                .get("pinned_entries")
                .unwrap()
                .as_u64("pinned_entries")
                .unwrap(),
            0
        );
        let results = doc.get("results").unwrap();
        assert_eq!(
            results
                .get("budget_bytes")
                .unwrap()
                .as_u64("budget_bytes")
                .unwrap(),
            1 << 20
        );
        // And the job listing serializes too.
        assert!(JsonValue::parse(list_json(&state).trim()).is_ok());
    }

    #[test]
    fn estimate_skips_resident_and_duplicate_keys() {
        let pool = TracePool::unbounded();
        let mut spec = JobSpec::new(vec![Benchmark::TpcB], 64);
        spec.small = true;
        let grid = spec.grid_shape().len() * POINT_RESULT_BYTES;
        let cold = estimate_new_bytes(&spec, &pool);
        assert!(cold > grid);
        // Profile and eval keys differ only by seed: two keys, each
        // estimated once, plus the per-point surcharge.
        assert_eq!(
            cold,
            spec.profile_key(Benchmark::TpcB).estimated_resident_bytes()
                + spec.eval_key(Benchmark::TpcB).estimated_resident_bytes()
                + grid
        );
        // A spec whose eval seed *is* the profile seed counts the shared
        // key once.
        let mut same = spec.clone();
        same.seed = addict_bench::PROFILE_SEED;
        assert_eq!(
            estimate_new_bytes(&same, &pool),
            same.profile_key(Benchmark::TpcB).estimated_resident_bytes() + grid
        );
        // Once generated, the footprint is already paid: only the grid
        // surcharge remains, and a warm resubmission sails through
        // admission.
        let quiet = |_: &str| {};
        addict_bench::run_job(&spec, &pool, &quiet).unwrap();
        assert_eq!(estimate_new_bytes(&spec, &pool), grid);
        // A wider `batch_sizes` grid over the same (warm) traces
        // reserves proportionally more: estimates track the fan-out,
        // not just the trace keys.
        let mut wide = spec.clone();
        wide.batch_sizes = vec![1, 2, 4, 8];
        assert!(wide.grid_shape().len() > spec.grid_shape().len());
        assert_eq!(
            estimate_new_bytes(&wide, &pool),
            wide.grid_shape().len() * POINT_RESULT_BYTES
        );
    }
}
