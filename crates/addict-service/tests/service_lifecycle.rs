//! Lifecycle state-machine coverage over a live server:
//! `queued → running → {done, cancelled, deadline_exceeded, failed}`,
//! double-cancel idempotence, deadline enforcement in-queue and mid-run,
//! result-store eviction bounds, and graceful shutdown with result
//! persistence.
//!
//! Races are made deterministic with the server's fault plan: the stall
//! gate parks a job at a known progress line, the test acts, then
//! releases — no sleeps standing in for synchronization.

use std::time::Duration;

use addict_bench::jsontext::JsonValue;
use addict_bench::{run_job, JobSpec, TracePool};
use addict_service::{
    cancel_job, get, job_result, job_status, poll_job, shutdown, submit, submit_detached, Server,
    ServerConfig, ServerHandle,
};

const JOB: &str = r#"{"benchmarks": ["tpcb"], "n_xcts": 12, "small": true}"#;

fn spawn(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

fn state_of(addr: std::net::SocketAddr, id: u64) -> String {
    let body = job_status(addr, id).expect("status");
    JsonValue::parse(body.trim())
        .expect("status is valid JSON")
        .get("state")
        .expect("state field")
        .as_str("state")
        .expect("state is a string")
        .to_owned()
}

/// Poll until the job reaches a terminal state; return it.
fn wait_terminal(addr: std::net::SocketAddr, id: u64) -> String {
    for _ in 0..200 {
        let state = state_of(addr, id);
        if !matches!(state.as_str(), "queued" | "running") {
            return state;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("job {id} never reached a terminal state");
}

fn stat(addr: std::net::SocketAddr, section: &str, key: &str) -> u64 {
    let body = get(addr, "/stats").expect("GET /stats");
    JsonValue::parse(body.trim())
        .expect("stats is valid JSON")
        .get(section)
        .unwrap_or_else(|| panic!("{section} section"))
        .get(key)
        .unwrap_or_else(|| panic!("{section}.{key}"))
        .as_u64(key)
        .unwrap()
}

/// Pins must drop promptly once a job finalizes; the release happens on
/// the executor thread a moment after the state flips, so poll briefly.
fn assert_unpinned(addr: std::net::SocketAddr) {
    for _ in 0..100 {
        if stat(addr, "cache", "pinned_entries") == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("trace-pool pins leaked");
}

#[test]
fn cancel_mid_run_is_cooperative_and_idempotent() {
    let (addr, handle, _join) = spawn(ServerConfig {
        job_workers: 1,
        ..ServerConfig::default()
    });

    // Park the job at its first progress line, provably mid-run.
    handle.faults().stall_after_progress(1);
    let id = submit_detached(addr, JOB).expect("submit");
    assert!(
        handle.faults().wait_until_stalled(Duration::from_secs(20)),
        "job never reached its first progress line"
    );
    assert_eq!(state_of(addr, id), "running");

    // Cancel fires the token; the job is still parked (running).
    let ack = cancel_job(addr, id).expect("cancel");
    assert!(ack.contains("\"state\":\"running\""), "{ack}");
    // Double-cancel is a no-op, not an error.
    let again = cancel_job(addr, id).expect("double cancel");
    assert!(again.contains("\"state\":\"running\""), "{again}");

    // Released, the job observes the token at the next sweep point.
    handle.faults().release_stall();
    assert_eq!(wait_terminal(addr, id), "cancelled");
    // Cancel-after-terminal stays idempotent and reports the final state.
    let after = cancel_job(addr, id).expect("cancel after terminal");
    assert!(after.contains("\"state\":\"cancelled\""), "{after}");
    // No result to fetch — a structured 409, and the pins are gone.
    let err = job_result(addr, id).expect_err("no result for a cancelled job");
    assert_eq!(err.status, Some(409));
    assert_unpinned(addr);
    assert_eq!(stat(addr, "lifecycle", "cancelled"), 1);

    // The server is fully healthy: the same spec runs to completion and
    // matches the batch path byte-for-byte.
    let reference = {
        let spec = JobSpec::from_json(JOB).unwrap();
        run_job(&spec, &TracePool::unbounded(), &|_: &str| {})
            .unwrap()
            .to_json()
    };
    let rerun = submit_detached(addr, JOB).expect("resubmit");
    let polled = poll_job(addr, rerun, |_| {}).expect("poll resubmission");
    assert_eq!(polled, reference, "post-cancel run lost byte identity");
}

#[test]
fn cancel_queued_job_never_runs() {
    // One executor, parked on a first job: the second job sits queued.
    let (addr, handle, _join) = spawn(ServerConfig {
        job_workers: 1,
        ..ServerConfig::default()
    });
    handle.faults().stall_after_progress(1);
    let runner = submit_detached(addr, JOB).expect("submit runner");
    assert!(handle.faults().wait_until_stalled(Duration::from_secs(20)));
    let queued = submit_detached(addr, JOB).expect("submit queued");
    assert_eq!(state_of(addr, queued), "queued");

    // Cancelling a queued job finalizes it immediately.
    let ack = cancel_job(addr, queued).expect("cancel queued");
    assert!(ack.contains("\"state\":\"cancelled\""), "{ack}");
    handle.faults().release_stall();
    assert_eq!(wait_terminal(addr, runner), "done");
    // The cancelled job never executed: no progress lines at all.
    let body = job_status(addr, queued).expect("status");
    let doc = JsonValue::parse(body.trim()).unwrap();
    assert_eq!(
        doc.get("progress")
            .unwrap()
            .as_arr("progress")
            .unwrap()
            .len(),
        0
    );
    assert_eq!(
        doc.get("state").unwrap().as_str("state").unwrap(),
        "cancelled"
    );
}

/// A spec with duplicated list entries is one job's worth of work, not
/// N: it admits, reserves, executes, and serializes exactly like its
/// deduped form instead of replaying repeated grid points — so a sloppy
/// client cannot inflate the admission reservation (or the sweep length)
/// by listing the same benchmark three times.
#[test]
fn duplicated_spec_entries_admit_and_run_deduped() {
    let (addr, _handle, _join) = spawn(ServerConfig::default());
    let dup = r#"{"benchmarks": ["tpcb", "tpcb", "tpcb"], "schedulers": ["baseline", "addict", "baseline"], "n_xcts": 12, "small": true}"#;
    let once = r#"{"benchmarks": ["tpcb"], "schedulers": ["baseline", "addict"], "n_xcts": 12, "small": true}"#;
    let mut dup_progress = Vec::new();
    let dup_result = submit(addr, dup, |line| dup_progress.push(line.to_owned()))
        .expect("duplicated spec admits");
    let once_result = submit(addr, once, |_| {}).expect("deduped spec admits");
    assert_eq!(
        dup_result, once_result,
        "duplicate list entries changed the result"
    );
    // The grid is 1 benchmark × 2 schedulers: one trace-fetch progress
    // line plus one per point — not the 3 × 3 grid the raw lists imply.
    assert_eq!(dup_progress.len(), 1 + 2, "{dup_progress:?}");
}

#[test]
fn deadlines_fire_in_queue_and_mid_run() {
    let (addr, handle, _join) = spawn(ServerConfig {
        job_workers: 1,
        ..ServerConfig::default()
    });

    // In-queue expiry: the executor is parked on a stalled job, so the
    // deadlined job waits in queue past its whole budget and must
    // finalize as deadline_exceeded without running at all.
    handle.faults().stall_after_progress(1);
    let runner = submit_detached(addr, JOB).expect("submit runner");
    assert!(handle.faults().wait_until_stalled(Duration::from_secs(20)));
    let doomed = submit_detached(
        addr,
        r#"{"benchmarks": ["tpcb"], "n_xcts": 12, "small": true, "deadline_ms": 10}"#,
    )
    .expect("submit doomed");
    std::thread::sleep(Duration::from_millis(30)); // let the 10 ms budget lapse
    handle.faults().release_stall();
    assert_eq!(wait_terminal(addr, runner), "done");
    assert_eq!(wait_terminal(addr, doomed), "deadline_exceeded");
    let body = job_status(addr, doomed).expect("status");
    let doc = JsonValue::parse(body.trim()).unwrap();
    assert_eq!(
        doc.get("progress")
            .unwrap()
            .as_arr("progress")
            .unwrap()
            .len(),
        0,
        "an in-queue expiry must never start executing"
    );
    let err = job_result(addr, doomed).expect_err("no result");
    assert_eq!(err.status, Some(504));

    // Mid-run expiry: park the job past its first progress line, let the
    // budget lapse while parked, release — the next sweep-point check
    // stops it.
    handle.faults().stall_after_progress(1);
    let midway = submit_detached(
        addr,
        // Warm traces (the runner generated them), so the deadline is
        // comfortably larger than the fetch phase yet still expires
        // while parked.
        r#"{"benchmarks": ["tpcb"], "n_xcts": 12, "small": true, "deadline_ms": 400}"#,
    )
    .expect("submit midway");
    assert!(handle.faults().wait_until_stalled(Duration::from_secs(20)));
    std::thread::sleep(Duration::from_millis(500));
    handle.faults().release_stall();
    assert_eq!(wait_terminal(addr, midway), "deadline_exceeded");
    assert_unpinned(addr);
    assert_eq!(stat(addr, "lifecycle", "deadline_exceeded"), 2);
}

#[test]
fn result_store_evicts_lru_but_never_the_newest() {
    // A result store too small for two results: completing a second
    // distinct job evicts the first (LRU), which then answers 410.
    let (addr, _handle, _join) = spawn(ServerConfig {
        result_budget: 100,
        ..ServerConfig::default()
    });
    let first = submit_detached(addr, JOB).expect("first");
    let first_bytes = poll_job(addr, first, |_| {}).expect("first result");
    assert!(
        first_bytes.len() > 100,
        "job result should exceed the tiny budget"
    );

    let second = submit_detached(
        addr,
        r#"{"benchmarks": ["tpcb"], "n_xcts": 12, "small": true, "seed": 99}"#,
    )
    .expect("second");
    let second_bytes = poll_job(addr, second, |_| {}).expect("second result");
    assert_ne!(first_bytes, second_bytes);

    // The newest result always survives its own completion; the old one
    // is gone with a structured 410.
    assert_eq!(
        job_result(addr, second).expect("newest survives"),
        second_bytes
    );
    let err = job_result(addr, first).expect_err("evicted");
    assert_eq!(err.status, Some(410));
    assert!(err.message.contains("result_evicted"), "{}", err.message);
    assert!(stat(addr, "results", "evictions") >= 1);

    // Identical jobs deduplicate instead of storing twice.
    let third = submit_detached(
        addr,
        r#"{"benchmarks": ["tpcb"], "n_xcts": 12, "small": true, "seed": 99}"#,
    )
    .expect("third");
    assert_eq!(
        poll_job(addr, third, |_| {}).expect("third result"),
        second_bytes
    );
    assert_eq!(stat(addr, "results", "dedups"), 1);
    assert_eq!(stat(addr, "results", "stored"), 1);
}

#[test]
fn shutdown_drains_persists_and_refuses_new_work() {
    let dump = std::env::temp_dir().join(format!("addict-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump);
    let (addr, handle, join) = spawn(ServerConfig {
        job_workers: 1,
        dump_dir: Some(dump.clone()),
        ..ServerConfig::default()
    });

    // A job is provably mid-run when the drain begins.
    handle.faults().stall_after_progress(1);
    let id = submit_detached(addr, JOB).expect("submit");
    assert!(handle.faults().wait_until_stalled(Duration::from_secs(20)));

    let ack = shutdown(addr).expect("POST /shutdown");
    assert!(ack.contains("\"draining\":true"), "{ack}");
    // Draining: liveness stays up, new work is structurally refused.
    assert_eq!(
        get(addr, "/healthz").expect("healthz while draining"),
        "ok\n"
    );
    let err = submit_detached(addr, JOB).expect_err("admission while draining");
    assert!(
        err.contains("503") && err.contains("shutting_down"),
        "{err}"
    );

    // The running job completes the drain, and serve() returns.
    handle.faults().release_stall();
    join.join()
        .expect("serve thread")
        .expect("serve returns cleanly");

    // The completed result was persisted, byte-identical to the batch
    // path.
    let persisted =
        std::fs::read_to_string(dump.join(format!("job_{id}.json"))).expect("dumped result");
    let spec = JobSpec::from_json(JOB).unwrap();
    let reference = run_job(&spec, &TracePool::unbounded(), &|_: &str| {})
        .unwrap()
        .to_json();
    assert_eq!(persisted, reference, "persisted result lost byte identity");
    let _ = std::fs::remove_dir_all(&dump);
}

#[test]
fn restart_recovers_dumped_results() {
    let dump = std::env::temp_dir().join(format!("addict-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump);
    let config = ServerConfig {
        job_workers: 1,
        dump_dir: Some(dump.clone()),
        ..ServerConfig::default()
    };

    // First life: run a job to completion, drain, persist.
    let (addr, _handle, join) = spawn(config.clone());
    let id = submit_detached(addr, JOB).expect("submit");
    let bytes = poll_job(addr, id, |_| {}).expect("result");
    shutdown(addr).expect("POST /shutdown");
    join.join().expect("serve thread").expect("serve returns");

    // Second life, same dump dir: the result is pollable at its old id
    // before any new work runs, and the listing/status agree it's done.
    let (addr, _handle, join) = spawn(config);
    assert_eq!(
        job_result(addr, id).expect("recovered result"),
        bytes,
        "recovery must serve the persisted bytes verbatim"
    );
    assert_eq!(state_of(addr, id), "done");
    assert!(
        get(addr, "/jobs")
            .expect("GET /jobs")
            .contains(&format!("\"id\":{id}")),
        "recovered job missing from the listing"
    );

    // New admissions never collide with recovered ids, and a rerun of
    // the same spec dedups onto the recovered bytes — byte identity
    // survives the restart.
    let fresh = submit_detached(addr, JOB).expect("fresh submit");
    assert!(fresh > id, "fresh id {fresh} collides with recovered {id}");
    assert_eq!(poll_job(addr, fresh, |_| {}).expect("fresh result"), bytes);
    assert_eq!(stat(addr, "results", "dedups"), 1);

    shutdown(addr).expect("second shutdown");
    join.join().expect("serve thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dump);
}
