//! Chaos suite: every injected fault — stalled sockets, worker panics,
//! forced generation failures, mid-stream disconnects, overload — must
//! leave the server alive (`/healthz` answers), at full worker strength
//! (the next job completes), and semantically intact (identical jobs
//! keep returning byte-identical results with warm-cache hit counts, no
//! leaked trace-pool pins).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use addict_bench::jsontext::JsonValue;
use addict_bench::{run_job, JobSpec, TracePool};
use addict_service::http::{read_response_meta, Response};
use addict_service::{get, poll_job, submit, submit_detached, Server, ServerConfig, ServerHandle};

const JOB: &str = r#"{"benchmarks": ["tpcb"], "n_xcts": 12, "small": true}"#;

fn spawn(config: ServerConfig) -> (std::net::SocketAddr, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn raw_post(addr: std::net::SocketAddr, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    read_response_meta(&mut BufReader::new(stream)).expect("response parses")
}

fn stat(addr: std::net::SocketAddr, section: &str, key: &str) -> u64 {
    let body = get(addr, "/stats").expect("GET /stats");
    JsonValue::parse(body.trim())
        .expect("stats is valid JSON")
        .get(section)
        .unwrap_or_else(|| panic!("{section} section"))
        .get(key)
        .unwrap_or_else(|| panic!("{section}.{key}"))
        .as_u64(key)
        .unwrap()
}

fn assert_alive(addr: std::net::SocketAddr) {
    assert_eq!(get(addr, "/healthz").expect("healthz"), "ok\n");
}

fn assert_unpinned(addr: std::net::SocketAddr) {
    for _ in 0..100 {
        if stat(addr, "cache", "pinned_entries") == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("trace-pool pins leaked");
}

fn batch_reference(job: &str) -> String {
    let spec = JobSpec::from_json(job).expect("job parses");
    run_job(&spec, &TracePool::unbounded(), &|_: &str| {})
        .expect("batch run")
        .to_json()
}

#[test]
fn stalled_socket_times_out_without_pinning_the_worker() {
    // ONE connection worker and a tight read deadline: if the slow-loris
    // connection pinned it, the follow-up healthz would hang forever.
    let (addr, _handle) = spawn(ServerConfig {
        workers: 1,
        io_timeout_ms: 200,
        ..ServerConfig::default()
    });

    let mut slow = TcpStream::connect(addr).expect("connect");
    // A request line and then... nothing. The body never comes.
    write!(slow, "POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n").expect("partial send");
    slow.flush().expect("flush");
    let resp = read_response_meta(&mut BufReader::new(slow.try_clone().expect("clone")))
        .expect("server answers the stalled client");
    assert_eq!(resp.status, 408, "{resp:?}");
    assert!(resp.body.contains("timeout"), "{resp:?}");

    // The single worker is free again: real traffic flows.
    assert_alive(addr);
    let result = submit(addr, JOB, |_| {}).expect("job after slow-loris");
    assert_eq!(result, batch_reference(JOB));
}

#[test]
fn worker_panic_is_contained_and_the_executor_survives() {
    // ONE executor: if the panic killed it, the follow-up job would
    // never leave the queue.
    let (addr, handle) = spawn(ServerConfig {
        job_workers: 1,
        ..ServerConfig::default()
    });

    handle.faults().panic_next_jobs(1);
    let err = submit(addr, JOB, |_| {}).expect_err("panicking job");
    assert!(
        err.contains("500") && err.contains("job_failed") && err.contains("injected worker panic"),
        "{err}"
    );
    assert_eq!(stat(addr, "lifecycle", "failed"), 1);
    assert_alive(addr);
    assert_unpinned(addr);

    // The same executor thread now runs the same spec to a clean,
    // byte-identical completion.
    let result = submit(addr, JOB, |_| {}).expect("job after panic");
    assert_eq!(result, batch_reference(JOB));
    assert_eq!(stat(addr, "lifecycle", "done"), 1);
}

#[test]
fn generation_fault_clears_the_pending_slot_and_recovers() {
    let (addr, handle) = spawn(ServerConfig {
        job_workers: 1,
        ..ServerConfig::default()
    });

    // The first trace generation dies mid-flight (engine population
    // failure). The pool's pending-slot guard must clear the slot, the
    // executor must contain the panic, and the job must fail
    // structurally.
    handle.fail_next_generations(1);
    let err = submit(addr, JOB, |_| {}).expect_err("generation fault");
    assert!(
        err.contains("500") && err.contains("injected generation fault"),
        "{err}"
    );
    assert_alive(addr);
    assert_unpinned(addr);

    // The retry generates cleanly — no wedged pending slot, counters
    // show one aborted miss plus the two real generations.
    let result = submit(addr, JOB, |_| {}).expect("retry after generation fault");
    assert_eq!(result, batch_reference(JOB));
    assert_eq!(stat(addr, "cache", "misses"), 3);
    assert_eq!(stat(addr, "cache", "generations"), 2);
    assert_eq!(stat(addr, "lifecycle", "failed"), 1);
    assert_eq!(stat(addr, "lifecycle", "done"), 1);
}

#[test]
fn mid_stream_disconnect_leaves_the_job_running_to_completion() {
    let (addr, _handle) = spawn(ServerConfig::default());

    // Stream a job but hang up after the first progress line — the
    // aborting-client fault.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /jobs?wait=1 HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{JOB}",
        JOB.len()
    )
    .expect("send");
    let mut reader = BufReader::new(stream);
    let mut saw_progress = false;
    for _ in 0..64 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        if line.starts_with("# ") {
            saw_progress = true;
            break;
        }
    }
    assert!(saw_progress, "never saw a progress line before aborting");
    drop(reader); // the disconnect

    // The job survives its client: the registry finishes it, and any
    // later client can poll the full result by id.
    let listing = get(addr, "/jobs").expect("GET /jobs");
    let doc = JsonValue::parse(listing.trim()).expect("listing is valid JSON");
    let jobs = doc.get("jobs").unwrap().as_arr("jobs").unwrap();
    assert_eq!(jobs.len(), 1, "{listing}");
    let id = jobs[0].get("id").unwrap().as_u64("id").unwrap();
    let polled = poll_job(addr, id, |_| {}).expect("poll the abandoned job");
    assert_eq!(polled, batch_reference(JOB));

    // And the traces it generated stay warm for the next client.
    let streamed = submit(addr, JOB, |_| {}).expect("warm resubmission");
    assert_eq!(streamed, polled);
    assert_eq!(stat(addr, "cache", "hits"), 2);
    assert_eq!(stat(addr, "cache", "generations"), 2);
    assert_alive(addr);
    assert_unpinned(addr);
}

#[test]
fn byte_overload_rejects_before_generation_even_under_concurrency() {
    // A budget that fits one cold TPC-B n=50 job (two trace ranges at
    // ~24 KiB each) but not two: of N concurrent distinct-seed
    // submissions, exactly one is admitted and the rest answer a
    // structured 503 + Retry-After *before* any generation starts.
    let (addr, _handle) = spawn(ServerConfig {
        job_workers: 1,
        cache_budget: 60_000,
        ..ServerConfig::default()
    });

    let responses: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                s.spawn(move || {
                    let job = format!(
                        r#"{{"benchmarks": ["tpcb"], "n_xcts": 50, "small": true, "seed": {}}}"#,
                        100 + i
                    );
                    raw_post(addr, "/jobs", &job)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let admitted: Vec<&Response> = responses.iter().filter(|r| r.status == 202).collect();
    let rejected: Vec<&Response> = responses.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        (admitted.len(), rejected.len()),
        (1, 3),
        "admission must be deterministic under concurrency: {responses:?}"
    );
    for r in &rejected {
        assert_eq!(r.retry_after, Some(5), "{r:?}");
        assert!(r.body.contains("over_capacity"), "{r:?}");
    }

    // The admitted job completes; the rejected ones never generated —
    // exactly one job's worth of trace ranges exist.
    let id = JsonValue::parse(admitted[0].body.trim())
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64("id")
        .unwrap();
    poll_job(addr, id, |_| {}).expect("admitted job completes");
    assert_eq!(stat(addr, "cache", "generations"), 2);
    assert_eq!(stat(addr, "lifecycle", "done"), 1);
    assert_alive(addr);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One executor parked mid-job, a one-slot queue: the first extra
    // submission queues, the second bounces with 429 + Retry-After.
    let (addr, handle) = spawn(ServerConfig {
        job_workers: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    });
    handle.faults().stall_after_progress(1);
    let runner = submit_detached(addr, JOB).expect("runner");
    assert!(handle.faults().wait_until_stalled(Duration::from_secs(20)));
    let queued = submit_detached(addr, JOB).expect("queued");

    let bounced = raw_post(addr, "/jobs", JOB);
    assert_eq!(bounced.status, 429, "{bounced:?}");
    assert_eq!(bounced.retry_after, Some(1), "{bounced:?}");
    assert!(bounced.body.contains("queue_full"), "{bounced:?}");

    // Liveness endpoints answer while the queue is full.
    assert_alive(addr);
    handle.faults().release_stall();
    let first = poll_job(addr, runner, |_| {}).expect("runner completes");
    let second = poll_job(addr, queued, |_| {}).expect("queued completes");
    assert_eq!(first, second, "queueing must not change the bytes");
    assert_eq!(first, batch_reference(JOB));
}
