//! End-to-end service gate: a real server on an ephemeral port, real TCP
//! round trips, and the three contracts that make the service trustworthy:
//!
//! 1. **Byte identity** — the same job submitted twice, and executed
//!    once more through the in-process batch path, serializes to the
//!    same bytes all three times. The server adds transport, never
//!    semantics.
//! 2. **Cache effectiveness** — the second submission regenerates
//!    nothing: the `/stats` generation counter is unchanged and both
//!    trace fetches count as hits.
//! 3. **Strict admission** — invalid specs (zero transactions, zero
//!    threads, an empty benchmark list) answer 400 with a structured
//!    error naming the offending field, and never touch the counters.

use addict_bench::jsontext::JsonValue;
use addict_bench::{run_job, JobSpec, TracePool};
use addict_service::{get, submit, Server, ServerConfig};

/// Bind on port 0, serve on a background thread, return the address.
fn spawn_server() -> std::net::SocketAddr {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            cache_budget: 256 << 20,
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    std::thread::spawn(move || server.serve());
    addr
}

/// The smoke job: small-scale TPC-B under all four schedulers — big
/// enough to exercise profiling, Algorithm 1, and every scheduler;
/// small enough for a debug-build CI run.
const SMOKE_JOB: &str = r#"{"benchmarks": ["tpcb"], "n_xcts": 24, "threads": 2, "small": true}"#;

fn cache_counters(addr: std::net::SocketAddr) -> (u64, u64, u64, u64) {
    let body = get(addr, "/stats").expect("GET /stats");
    let doc = JsonValue::parse(body.trim()).expect("stats is valid JSON");
    let cache = doc.get("cache").expect("cache section");
    let n = |k: &str| cache.get(k).expect(k).as_u64(k).unwrap();
    (n("hits"), n("misses"), n("generations"), n("evictions"))
}

#[test]
fn server_jobs_are_byte_identical_and_cached() {
    let addr = spawn_server();

    let body = get(addr, "/healthz").expect("GET /healthz");
    assert_eq!(body, "ok\n");

    // Cold: both trace ranges (profile + eval) generate.
    let mut progress_cold = Vec::new();
    let first = submit(addr, SMOKE_JOB, |line| progress_cold.push(line.to_owned()))
        .expect("first submission");
    let (hits, misses, generations, _) = cache_counters(addr);
    assert_eq!(misses, 2, "profile + eval ranges generate once each");
    assert_eq!(generations, 2);
    assert_eq!(hits, 0);
    assert!(
        progress_cold.iter().any(|l| l.contains("generated")),
        "cold run must report generation: {progress_cold:?}"
    );
    // Progress streamed one line per trace fetch + one per grid point.
    assert_eq!(progress_cold.len(), 1 + 4, "{progress_cold:?}");

    // Warm: byte-identical result, zero regeneration, pure cache hits.
    let mut progress_warm = Vec::new();
    let second = submit(addr, SMOKE_JOB, |line| progress_warm.push(line.to_owned()))
        .expect("second submission");
    assert_eq!(
        first, second,
        "same spec must serialize byte-identical across submissions"
    );
    let (hits, misses, generations, _) = cache_counters(addr);
    assert_eq!(generations, 2, "warm run regenerated traces");
    assert_eq!(misses, 2);
    assert_eq!(hits, 2, "warm run must hit for profile and eval");
    assert!(
        progress_warm.iter().any(|l| l.contains("cache hit")),
        "warm run must report hits: {progress_warm:?}"
    );

    // The batch path — same spec, same executor, no server — produces
    // the same bytes: the service adds transport, never semantics.
    let spec = JobSpec::from_json(SMOKE_JOB).expect("smoke job parses");
    let pool = TracePool::unbounded();
    let batch = run_job(&spec, &pool, &|_: &str| {}).expect("batch run");
    assert_eq!(
        first,
        batch.to_json(),
        "server and batch executions must serialize byte-identical"
    );

    // And the jobs counter saw both submissions.
    let stats = get(addr, "/stats").expect("GET /stats");
    let doc = JsonValue::parse(stats.trim()).unwrap();
    assert_eq!(doc.get("jobs").unwrap().as_u64("jobs").unwrap(), 2);
}

#[test]
fn invalid_specs_answer_structured_400s() {
    let addr = spawn_server();
    for (job, field) in [
        // Zero transactions.
        (r#"{"benchmarks": ["tpcb"], "n_xcts": 0}"#, "n_xcts"),
        // Zero worker threads.
        (
            r#"{"benchmarks": ["tpcb"], "n_xcts": 8, "threads": 0}"#,
            "threads",
        ),
        // Empty benchmark list.
        (r#"{"benchmarks": [], "n_xcts": 8}"#, "benchmarks"),
        // Unknown benchmark name.
        (r#"{"benchmarks": ["tpcz"], "n_xcts": 8}"#, "benchmarks"),
        // Unknown field (strict parsing: typos never default silently).
        (
            r#"{"benchmarks": ["tpcb"], "n_xcts": 8, "xcts": 9}"#,
            "spec",
        ),
        // Not JSON at all.
        ("queue me a job", "spec"),
    ] {
        let err = submit(addr, job, |_| {}).expect_err(job);
        assert!(err.contains("400"), "{job} gave {err}");
        let body = err.split_once(": ").map(|x| x.1).expect("error body");
        let doc = JsonValue::parse(body).unwrap_or_else(|e| panic!("{job}: {e} in {body:?}"));
        let error = doc.get("error").expect("error object");
        assert_eq!(
            error.get("code").unwrap().as_str("code").unwrap(),
            "invalid_spec",
            "{job}"
        );
        assert_eq!(
            error.get("field").unwrap().as_str("field").unwrap(),
            field,
            "{job}"
        );
    }
    // Rejected jobs never touch the trace cache or the jobs counter.
    let (hits, misses, generations, _) = cache_counters(addr);
    assert_eq!((hits, misses, generations), (0, 0, 0));
    let stats = get(addr, "/stats").expect("GET /stats");
    let doc = JsonValue::parse(stats.trim()).unwrap();
    assert_eq!(doc.get("jobs").unwrap().as_u64("jobs").unwrap(), 0);

    // Unknown routes are structured 404s.
    let err = get(addr, "/nope").expect_err("404 route");
    assert!(err.contains("404"), "{err}");
}
