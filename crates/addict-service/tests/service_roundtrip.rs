//! End-to-end service gate: a real server on an ephemeral port, real TCP
//! round trips, and the contracts that make the service trustworthy:
//!
//! 1. **Byte identity** — the same job submitted twice, and executed
//!    once more through the in-process batch path, serializes to the
//!    same bytes all three times. The server adds transport, never
//!    semantics.
//! 2. **Cache effectiveness** — the second submission regenerates
//!    nothing: the `/stats` generation counter is unchanged and both
//!    trace fetches count as hits.
//! 3. **Strict admission** — invalid specs (zero transactions, zero
//!    threads, an empty benchmark list) answer 400 with a structured
//!    error naming the offending field, and never touch the counters.
//! 4. **Detach equivalence** — a job submitted detached, with the client
//!    gone the whole time it runs, polls back byte-identical to the
//!    synchronous streamed path.

use addict_bench::jsontext::JsonValue;
use addict_bench::{run_job, JobSpec, TracePool};
use addict_service::{
    get, job_result, job_status, poll_job, submit, submit_detached, Server, ServerConfig,
};

/// Bind on port 0, serve on a background thread, return the address.
fn spawn_server() -> std::net::SocketAddr {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            job_workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    std::thread::spawn(move || server.serve());
    addr
}

/// The smoke job: small-scale TPC-B under every scheduler — big enough
/// to exercise profiling, Algorithm 1, and every scheduler (speculative
/// HTMX included); small enough for a debug-build CI run.
const SMOKE_JOB: &str = r#"{"benchmarks": ["tpcb"], "n_xcts": 24, "threads": 2, "small": true}"#;

fn cache_counters(addr: std::net::SocketAddr) -> (u64, u64, u64, u64) {
    let body = get(addr, "/stats").expect("GET /stats");
    let doc = JsonValue::parse(body.trim()).expect("stats is valid JSON");
    let cache = doc.get("cache").expect("cache section");
    let n = |k: &str| cache.get(k).expect(k).as_u64(k).unwrap();
    (n("hits"), n("misses"), n("generations"), n("evictions"))
}

#[test]
fn server_jobs_are_byte_identical_and_cached() {
    let addr = spawn_server();

    let body = get(addr, "/healthz").expect("GET /healthz");
    assert_eq!(body, "ok\n");

    // Cold: both trace ranges (profile + eval) generate.
    let mut progress_cold = Vec::new();
    let first = submit(addr, SMOKE_JOB, |line| progress_cold.push(line.to_owned()))
        .expect("first submission");
    let (hits, misses, generations, _) = cache_counters(addr);
    assert_eq!(misses, 2, "profile + eval ranges generate once each");
    assert_eq!(generations, 2);
    assert_eq!(hits, 0);
    assert!(
        progress_cold.iter().any(|l| l.contains("generated")),
        "cold run must report generation: {progress_cold:?}"
    );
    // Progress streamed one line per trace fetch + one per grid point.
    assert_eq!(progress_cold.len(), 1 + 5, "{progress_cold:?}");

    // Warm: byte-identical result, zero regeneration, pure cache hits.
    let mut progress_warm = Vec::new();
    let second = submit(addr, SMOKE_JOB, |line| progress_warm.push(line.to_owned()))
        .expect("second submission");
    assert_eq!(
        first, second,
        "same spec must serialize byte-identical across submissions"
    );
    let (hits, misses, generations, _) = cache_counters(addr);
    assert_eq!(generations, 2, "warm run regenerated traces");
    assert_eq!(misses, 2);
    assert_eq!(hits, 2, "warm run must hit for profile and eval");
    assert!(
        progress_warm.iter().any(|l| l.contains("cache hit")),
        "warm run must report hits: {progress_warm:?}"
    );

    // The batch path — same spec, same executor, no server — produces
    // the same bytes: the service adds transport, never semantics.
    let spec = JobSpec::from_json(SMOKE_JOB).expect("smoke job parses");
    let pool = TracePool::unbounded();
    let batch = run_job(&spec, &pool, &|_: &str| {}).expect("batch run");
    assert_eq!(
        first,
        batch.to_json(),
        "server and batch executions must serialize byte-identical"
    );

    // And the jobs counter saw both submissions.
    let stats = get(addr, "/stats").expect("GET /stats");
    let doc = JsonValue::parse(stats.trim()).unwrap();
    assert_eq!(doc.get("jobs").unwrap().as_u64("jobs").unwrap(), 2);
}

#[test]
fn detached_job_survives_disconnect_and_polls_byte_identical() {
    let addr = spawn_server();

    // The synchronous reference: stream the job to completion.
    let streamed = submit(addr, SMOKE_JOB, |_| {}).expect("streamed submission");

    // Detach: POST /jobs answers immediately with an id; the submitting
    // connection closes right there — the rest of the job's life happens
    // with no client attached (the simulated disconnect).
    let id = submit_detached(addr, SMOKE_JOB).expect("detached submission");

    // A later client (same process here, any process in general)
    // follows the job by id and fetches the stored result.
    let mut progress = Vec::new();
    let polled = poll_job(addr, id, |line| progress.push(line.to_owned())).expect("poll to done");
    assert_eq!(
        streamed, polled,
        "detached+polled result must be byte-identical to the streamed path"
    );
    // Polling again after done re-serves the exact same bytes.
    assert_eq!(polled, job_result(addr, id).expect("re-poll"));
    // The detached run was warm: progress reported cache hits, and the
    // status body agrees the job is done with a result digest.
    assert!(
        progress.iter().any(|l| l.contains("cache hit")),
        "{progress:?}"
    );
    let status = job_status(addr, id).expect("status");
    let doc = JsonValue::parse(status.trim()).expect("status is valid JSON");
    assert_eq!(doc.get("state").unwrap().as_str("state").unwrap(), "done");
    assert!(doc.get("result_fnv64").unwrap().as_str("digest").is_ok());

    // And the listing knows the job.
    let listing = get(addr, "/jobs").expect("GET /jobs");
    assert!(listing.contains("\"state\":\"done\""), "{listing}");
}

#[test]
fn invalid_specs_answer_structured_400s() {
    let addr = spawn_server();
    for (job, field) in [
        // Zero transactions.
        (r#"{"benchmarks": ["tpcb"], "n_xcts": 0}"#, "n_xcts"),
        // Zero worker threads.
        (
            r#"{"benchmarks": ["tpcb"], "n_xcts": 8, "threads": 0}"#,
            "threads",
        ),
        // Empty benchmark list.
        (r#"{"benchmarks": [], "n_xcts": 8}"#, "benchmarks"),
        // Unknown benchmark name.
        (r#"{"benchmarks": ["tpcz"], "n_xcts": 8}"#, "benchmarks"),
        // Unknown field (strict parsing: typos never default silently).
        (
            r#"{"benchmarks": ["tpcb"], "n_xcts": 8, "xcts": 9}"#,
            "spec",
        ),
        // Not JSON at all.
        ("queue me a job", "spec"),
    ] {
        // The raw wire answer carries the structured body.
        let resp = raw_post(addr, "/jobs", job);
        assert_eq!(resp.status, 400, "{job}");
        let doc = JsonValue::parse(resp.body.trim())
            .unwrap_or_else(|e| panic!("{job}: {e} in {:?}", resp.body));
        let error = doc.get("error").expect("error object");
        assert_eq!(
            error.get("code").unwrap().as_str("code").unwrap(),
            "invalid_spec",
            "{job}"
        );
        assert_eq!(
            error.get("field").unwrap().as_str("field").unwrap(),
            field,
            "{job}"
        );
        // The client surfaces the same diagnosis.
        let err = submit(addr, job, |_| {}).expect_err(job);
        assert!(
            err.contains("400") && err.contains("invalid_spec"),
            "{job} gave {err}"
        );
    }
    // Rejected jobs never touch the trace cache or the jobs counter.
    let (hits, misses, generations, _) = cache_counters(addr);
    assert_eq!((hits, misses, generations), (0, 0, 0));
    let stats = get(addr, "/stats").expect("GET /stats");
    let doc = JsonValue::parse(stats.trim()).unwrap();
    assert_eq!(doc.get("jobs").unwrap().as_u64("jobs").unwrap(), 0);

    // Unknown routes and ids are structured 404s.
    let err = get(addr, "/nope").expect_err("404 route");
    assert!(err.contains("404"), "{err}");
    let err = job_status(addr, 999).expect_err("404 job");
    assert!(err.contains("404"), "{err}");
}

/// One raw POST, returning the parsed response (status + Retry-After +
/// body) — for asserting on wire-level details the client API abstracts.
fn raw_post(addr: std::net::SocketAddr, path: &str, body: &str) -> addict_service::http::Response {
    use std::io::Write as _;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    addict_service::http::read_response_meta(&mut std::io::BufReader::new(stream))
        .expect("response parses")
}
